"""Tests for the literal Fig. 3 specializer, and its agreement with the
production engine on expression-level inputs."""

import pytest

from repro.anf import is_anf
from repro.interp import Interpreter
from repro.lang import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    If,
    Lam,
    Let,
    Lift,
    Prim,
    Var,
)
from repro.pe import BindingTimeError, Dynamic, SourceBackend
from repro.pe.fig3 import Fig3Specializer
from repro.sexp import sym

x, y, f, d = sym("x"), sym("y"), sym("f"), sym("d")
PLUS, TIMES, ZERO = sym("+"), sym("*"), sym("zero?")


def dyn(name):
    return Dynamic(Var(name))


class TestStaticRules:
    def test_constant(self):
        out = Fig3Specializer().spec_expr(Const(3))
        assert out == Const(3)

    def test_static_prim_computed(self):
        e = Prim(PLUS, (Const(1), Const(2)))
        assert Fig3Specializer().spec_expr(e) == Const(3)

    def test_static_if_selects_branch(self):
        e = If(Prim(ZERO, (Const(0),)), Const(10), Const(20))
        assert Fig3Specializer().spec_expr(e) == Const(10)

    def test_static_application_unfolds(self):
        e = App(Lam((x,), Prim(TIMES, (Var(x), Var(x)))), (Const(6),))
        assert Fig3Specializer().spec_expr(e) == Const(36)

    def test_let_binds_static(self):
        e = Let(x, Const(5), Prim(PLUS, (Var(x), Const(1))))
        assert Fig3Specializer().spec_expr(e) == Const(6)

    def test_environment_lookup_failure(self):
        import repro.pe.errors as errors

        with pytest.raises(errors.SpecializationError):
            Fig3Specializer().spec_expr(Var(x))


class TestDynamicRules:
    def test_dprim_let_wraps(self):
        # Fig. 3 wraps every dynamic primitive in a let, even at the end.
        e = DPrim(PLUS, (Var(d), Lift(Const(1))))
        out = Fig3Specializer().spec_expr(e, {d: dyn(d)})
        assert isinstance(out, Let)
        assert isinstance(out.rhs, Prim)
        assert out.body == Var(out.var)
        assert is_anf(out)

    def test_lift_produces_constant(self):
        out = Fig3Specializer().spec_expr(Lift(Const(42)))
        assert out == Const(42)

    def test_lift_of_computed_static(self):
        e = Lift(Prim(PLUS, (Const(1), Const(2))))
        assert Fig3Specializer().spec_expr(e) == Const(3)

    def test_dlam_specializes_body(self):
        # (lambda^D (x) (+^D x (lift (* 3 4)))) — the static multiply is
        # computed under the dynamic lambda.
        e = DLam(
            (x,),
            DPrim(PLUS, (Var(x), Lift(Prim(TIMES, (Const(3), Const(4)))))),
        )
        out = Fig3Specializer().spec_expr(e)
        assert isinstance(out, Lam)
        assert is_anf(out)
        assert Const(12) in out.body.rhs.args

    def test_dapp_let_wraps(self):
        e = DApp(Var(f), (Var(d),))
        out = Fig3Specializer().spec_expr(e, {f: dyn(f), d: dyn(d)})
        assert isinstance(out, Let)
        assert isinstance(out.rhs, App)

    def test_dif_duplicates_continuation(self):
        # k is duplicated into both branches (the figure's rule): the
        # surrounding (+^D · 1) appears twice in the residual code.
        e = DPrim(
            PLUS,
            (DIf(Var(d), Lift(Const(1)), Lift(Const(2))), Lift(Const(10))),
        )
        out = Fig3Specializer().spec_expr(e, {d: dyn(d)})
        assert isinstance(out, If)
        from repro.lang import walk

        plus_count = sum(
            1
            for n in walk(out)
            if isinstance(n, Prim) and n.op is PLUS
        )
        assert plus_count == 2

    def test_residual_semantics(self):
        # residual((x * (2+3))^D)(x=4) == 20
        e = DPrim(TIMES, (Var(x), Lift(Prim(PLUS, (Const(2), Const(3))))))
        out = Fig3Specializer().spec_expr(e, {x: dyn(x)})
        interp = Interpreter()
        from repro.interp import Env

        assert interp.eval(out, Env({x: 4}, None)) == 20


class TestAgreementWithProductionEngine:
    """Fig. 3 and the production engine agree semantically on
    expression-level inputs (modulo fresh names and tail refinement)."""

    CASES = [
        # (annotated expression builder, env names, env values)
        (
            lambda: DPrim(PLUS, (Var(d), Lift(Prim(TIMES, (Const(3), Const(7)))))),
            [7],
        ),
        (
            lambda: DIf(
                Prim(ZERO, (Var(d),)) if False else DPrim(ZERO, (Var(d),)),
                Lift(Const(1)),
                DPrim(PLUS, (Var(d), Lift(Const(1)))),
            ),
            [0],
        ),
        (
            lambda: DApp(
                DLam((x,), DPrim(TIMES, (Var(x), Var(x)))), (Var(d),)
            ),
            [9],
        ),
    ]

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_same_results(self, case):
        builder, dyn_args = self.CASES[case]
        expr = builder()

        fig3_out = Fig3Specializer().spec_expr(expr, {d: dyn(d)})

        # Production engine via a one-def annotated program.
        from repro.pe.annprog import AnnDef, AnnotatedProgram, BindingTime
        from repro.pe.specializer import Specializer

        g = sym("goal")
        ann = AnnotatedProgram(
            (AnnDef(g, (d,), (BindingTime.DYNAMIC,), expr, True),), g
        )
        rp = Specializer(ann, SourceBackend()).run([])

        interp = Interpreter()
        from repro.interp import Env

        expected = interp.eval(fig3_out, Env({d: dyn_args[0]}, None))
        assert rp.run(dyn_args) == expected

    def test_both_produce_anf(self):
        for builder, _ in self.CASES:
            out = Fig3Specializer().spec_expr(builder(), {d: dyn(d)})
            assert is_anf(out)


class TestFig3Errors:
    def test_dynamic_test_in_static_if(self):
        e = If(Var(d), Const(1), Const(2))
        with pytest.raises(BindingTimeError):
            Fig3Specializer().spec_expr(e, {d: dyn(d)})

    def test_dynamic_arg_to_static_prim(self):
        e = Prim(PLUS, (Var(d), Const(1)))
        with pytest.raises(BindingTimeError):
            Fig3Specializer().spec_expr(e, {d: dyn(d)})

    def test_cannot_lift_closure(self):
        e = Lift(Lam((x,), Var(x)))
        with pytest.raises(BindingTimeError):
            Fig3Specializer().spec_expr(e)
