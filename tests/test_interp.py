"""Tests for the reference interpreter."""

import pytest

from repro.interp import Interpreter, StepLimitExceeded, run_program
from repro.lang import parse_program
from repro.runtime.errors import SchemeError
from repro.runtime.values import Pair, scheme_equal, scheme_list
from repro.sexp import sym
from tests.helpers import interp_datum, interp_expr


class TestBasicEvaluation:
    def test_constant(self):
        assert interp_expr("42") == 42

    def test_quoted_list_converts_to_pairs(self):
        v = interp_expr("'(1 2)")
        assert isinstance(v, Pair)
        assert scheme_equal(v, scheme_list(1, 2))

    def test_lambda_application(self):
        assert interp_expr("((lambda (x y) (- x y)) 10 4)") == 6

    def test_closure_captures_environment(self):
        assert interp_expr("(((lambda (x) (lambda (y) (+ x y))) 3) 4)") == 7

    def test_let(self):
        assert interp_expr("(let ((x 5)) (* x x))") == 25

    def test_if_truthiness_only_false_is_false(self):
        assert interp_expr("(if 0 'zero 'no)") is sym("zero")
        assert interp_expr("(if '() 'nil 'no)") is sym("nil")
        assert interp_expr("(if #f 'yes 'no)") is sym("no")

    def test_shadowing(self):
        assert interp_expr("(let ((x 1)) (let ((x 2)) x))") == 2


class TestProcedures:
    def test_arity_mismatch(self):
        with pytest.raises(SchemeError):
            interp_expr("((lambda (x) x) 1 2)")

    def test_apply_non_procedure(self):
        with pytest.raises(SchemeError):
            interp_expr("(5 6)")

    def test_unbound_variable(self):
        with pytest.raises(SchemeError):
            interp_expr("nope")

    def test_primitive_as_value(self):
        assert interp_expr("(let ((f car)) (f '(1 2)))") == 1

    def test_procedure_predicate(self):
        assert interp_expr("(procedure? (lambda (x) x))") is True
        assert interp_expr("(procedure? car)") is True
        assert interp_expr("(procedure? 5)") is False


class TestRecursionAndTails:
    def test_deep_tail_recursion_constant_stack(self):
        p = parse_program(
            "(define (loop n) (if (zero? n) 'done (loop (- n 1))))"
        )
        assert run_program(p, [200000]) is sym("done")

    def test_mutual_recursion(self):
        p = parse_program(
            """
            (define (even? n) (if (zero? n) #t (odd? (- n 1))))
            (define (odd? n) (if (zero? n) #f (even? (- n 1))))
            (define (main n) (even? n))
            """
        )
        assert run_program(p, [100001]) is False

    def test_non_tail_recursion(self):
        p = parse_program("(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1)))))")
        assert run_program(p, [100]) == 5050

    def test_ackermann_small(self):
        p = parse_program(
            """
            (define (ack m n)
              (cond ((zero? m) (+ n 1))
                    ((zero? n) (ack (- m 1) 1))
                    (else (ack (- m 1) (ack m (- n 1))))))
            """
        )
        assert run_program(p, [2, 3]) == 9


class TestStepLimit:
    def test_divergence_detected(self):
        p = parse_program("(define (f) (f))")
        with pytest.raises(StepLimitExceeded):
            run_program(p, [], step_limit=1000)

    def test_limit_not_triggered_by_terminating_program(self):
        p = parse_program("(define (f x) (+ x 1))")
        assert run_program(p, [1], step_limit=1000) == 2


class TestPrimSemantics:
    def test_arith(self):
        assert interp_expr("(+ 1 2 3)") == 6
        assert interp_expr("(- 10)") == -10
        assert interp_expr("(* 2 3 4)") == 24

    def test_division_exact_when_even(self):
        assert interp_expr("(/ 10 2)") == 5
        assert interp_expr("(/ 7 2)") == 3.5

    def test_quotient_remainder_modulo_signs(self):
        assert interp_expr("(quotient -7 2)") == -3
        assert interp_expr("(remainder -7 2)") == -1
        assert interp_expr("(modulo -7 2)") == 1

    def test_division_by_zero(self):
        with pytest.raises(SchemeError):
            interp_expr("(quotient 1 0)")

    def test_comparison_chains(self):
        assert interp_expr("(< 1 2 3)") is True
        assert interp_expr("(< 1 3 2)") is False

    def test_list_ops(self):
        assert interp_datum("(append '(1 2) '(3) '())") == [1, 2, 3]
        assert interp_datum("(reverse '(1 2 3))") == [3, 2, 1]
        assert interp_expr("(length '(a b c))") == 3
        assert interp_expr("(list-ref '(a b c) 1)") is sym("b")

    def test_assq_and_memq(self):
        assert interp_datum("(assq 'b '((a 1) (b 2)))") == [sym("b"), 2]
        assert interp_expr("(assq 'z '((a 1)))") is False
        assert interp_datum("(memq 'b '(a b c))") == [sym("b"), sym("c")]

    def test_equal_structural(self):
        assert interp_expr("(equal? '(1 (2)) '(1 (2)))") is True
        assert interp_expr("(eq? '(1) '(1))") is False or True  # identity-based

    def test_car_of_non_pair(self):
        with pytest.raises(SchemeError):
            interp_expr("(car 5)")

    def test_error_primitive(self):
        with pytest.raises(SchemeError, match="boom"):
            interp_expr('(error "boom" 1 2)')

    def test_symbol_string_conversions(self):
        assert interp_expr("(symbol->string 'abc)") == "abc"
        assert interp_expr("(string->symbol \"xyz\")") is sym("xyz")

    def test_number_predicates(self):
        assert interp_expr("(number? 1)") is True
        assert interp_expr("(number? #t)") is False
        assert interp_expr("(integer? 1.5)") is False

    def test_expt_and_sqrt(self):
        assert interp_expr("(expt 2 10)") == 1024
        assert interp_expr("(sqrt 49)") == 7
        assert interp_expr("(sqrt 2)") == pytest.approx(1.41421356)


class TestCells:
    def test_cell_roundtrip(self):
        assert interp_expr(
            "(let ((c (make-cell 1))) (begin (cell-set! c 42) (cell-ref c)))"
        ) == 42

    def test_set_bang_raises_without_elimination(self):
        from repro.lang import parse_core
        from repro.sexp import read

        interp = Interpreter()
        with pytest.raises(SchemeError, match="assignment elimination"):
            interp.eval(parse_core(read("(let (x 1) (set! x 2))")), None)
