"""A labelled corpus for the specialization-safety analyzer.

Every entry carries a ground-truth label: ``DIVERGING`` programs make
the Fig. 3 specializer diverge (infinite unfolding, or an unbounded
memo table), ``SAFE`` programs are look-alikes — often one token away
from a diverger — whose specialization terminates.  The analyzer must
separate the two sets exactly: flag every diverger with a cycle-path
diagnostic, report nothing on the safe set.

``static_args`` is a sample static input (Scheme data, as source text)
so runtime tests can drive each program through the specializer: safe
entries must reach a fixpoint within the runtime budgets, diverging
entries must trip them.  Entries with ``runtime=False`` are analysis
ground truth only — their specialization trips a known binding-time
infelicity of the seed BTA (see the entry's note) rather than the
property under test.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusProgram:
    """One labelled corpus entry."""

    name: str
    source: str
    signature: str
    goal: str
    static_args: tuple = ()
    memo_hints: tuple = ()
    unfold_hints: tuple = ()
    runtime: bool = True
    note: str = ""


DIVERGING: tuple[CorpusProgram, ...] = (
    CorpusProgram(
        name="count-up",
        source="(define (f s d) (if (null? d) s (f (+ s 1) (cdr d))))",
        signature="SD",
        goal="f",
        static_args=("0",),
        note="static counter grows at every memoized call: one residual"
        " variant per natural number",
    ),
    CorpusProgram(
        name="accumulate",
        source="(define (g s d) (if (null? d) s (g (cons 1 s) (cdr d))))",
        signature="SD",
        goal="g",
        static_args=("()",),
        note="static accumulator grows structurally without bound",
    ),
    CorpusProgram(
        name="num-descent-dynamic-guard",
        source="(define (down s d) (if (zero? d) s (down (- s 1) d)))",
        signature="SD",
        goal="down",
        static_args=("0",),
        note="the descending counter has no static bound: the dynamic"
        " guard cannot stop specialization, s runs to -infinity",
    ),
    CorpusProgram(
        name="poly-explosion",
        source="""
(define (poly s d)
  (if (null? d)
      s
      (if (car d)
          (poly (cons 1 s) (cdr d))
          (poly (cons 2 s) (cdr d)))))""",
        signature="SD",
        goal="poly",
        static_args=("()",),
        note="two growing memo sites: exponentially many variants",
    ),
    CorpusProgram(
        name="ping-pong",
        source="""
(define (ping s d) (if (null? d) s (pong (cons 1 s) (cdr d))))
(define (pong s d) (if (null? d) s (ping (cons 2 s) (cdr d))))""",
        signature="SD",
        goal="ping",
        static_args=("()",),
        note="the growth hides in a two-function cycle",
    ),
    CorpusProgram(
        name="spin-unfold-hint",
        source="(define (spin s d) (if (null? d) s (spin s (cdr d))))",
        signature="SD",
        goal="spin",
        static_args=("0",),
        unfold_hints=("spin",),
        note="safe when memoized (see spin-memo-safe); forcing the call"
        " to unfold makes it loop with nothing decreasing",
    ),
    CorpusProgram(
        name="lambda-self-app",
        source="""
(define (hof s d)
  (let ((h (lambda (f x) (if (null? x) s (f f (cdr x))))))
    (h h d)))""",
        signature="SD",
        goal="hof",
        static_args=("0",),
        note="self-applied static closure recursing on dynamic data:"
        " infinite unfolding through the closure cycle",
    ),
)


SAFE: tuple[CorpusProgram, ...] = (
    CorpusProgram(
        name="power",
        source="(define (power x n)"
        " (if (zero? n) 1 (* x (power x (- n 1)))))",
        signature="DS",
        goal="power",
        static_args=("5",),
        note="static recursion under a static guard: the program's own"
        " termination carries over to specialization",
    ),
    CorpusProgram(
        name="spin-memo-safe",
        source="(define (spin s d) (if (null? d) s (spin s (cdr d))))",
        signature="SD",
        goal="spin",
        static_args=("0",),
        note="the diverger's look-alike: s is passed unchanged, so the"
        " memo table has exactly one entry and cuts the cycle",
    ),
    CorpusProgram(
        name="lambda-safe",
        source="""
(define (hof2 s d)
  (let ((h (lambda (f x) (if (null? x) 0 (f f (cdr x))))))
    (+ (h h s) d)))""",
        signature="SD",
        goal="hof2",
        static_args=("(1 2 3)",),
        note="the same self-application pattern, recursing on *static*"
        " data: structural descent proves it",
    ),
    CorpusProgram(
        name="ackermann",
        source="""
(define (ack m n)
  (if (zero? m)
      (+ n 1)
      (if (zero? n)
          (ack (- m 1) 1)
          (ack (- m 1) (ack m (- n 1))))))""",
        signature="SS",
        goal="ack",
        static_args=("2", "3"),
        note="fully static: every conditional is decided at"
        " specialization time, no cycle sits under dynamic control."
        " The polyvariant BTA splits the residual goal (whose branches"
        " must lift) from an all-static value variant for the inner"
        " recursive calls, so specialization folds the whole tower to a"
        " constant; the monovariant join instead forces the lifted"
        " (dynamic) recursion result into a static parameter and dies"
        " with a BindingTimeError — pinned in test_bta.py",
    ),
    CorpusProgram(
        name="triangle-static",
        source="(define (tri s acc)"
        " (if (zero? s) acc (tri (- s 1) (+ acc s))))",
        signature="SS",
        goal="tri",
        static_args=("4", "0"),
        note="fully static tail recursion: specialization runs the"
        " whole computation and residualizes a constant",
    ),
    CorpusProgram(
        name="guarded-countdown",
        source="(define (cd s d) (if (zero? s) d (cd (- s 1) (cdr d))))",
        signature="SD",
        goal="cd",
        static_args=("3",),
        note="the num-descent look-alike with the guard on the *static*"
        " side: the descent is bounded",
    ),
    CorpusProgram(
        name="rev-static-accum",
        source="(define (rev s acc d)"
        " (if (null? s) (cons acc d)"
        " (rev (cdr s) (cons (car s) acc) d)))",
        signature="SSD",
        goal="rev",
        static_args=("(1 2 3)", "()"),
        note="one static grows, but only by the substructure the other"
        " loses: total static size is conserved",
    ),
)
