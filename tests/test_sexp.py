"""Tests for the s-expression reader and writer."""

import pytest
from hypothesis import given

from repro.sexp import Char, ReaderError, read, read_all, sym, write
from tests.strategies import data


class TestReaderAtoms:
    def test_integer(self):
        assert read("42") == 42

    def test_negative_integer(self):
        assert read("-17") == -17

    def test_float(self):
        assert read("3.25") == 3.25

    def test_negative_float(self):
        assert read("-0.5") == -0.5

    def test_exponent_float(self):
        assert read("1e3") == 1000.0

    def test_symbol(self):
        assert read("foo") is sym("foo")

    def test_symbol_with_specials(self):
        assert read("list->vector!?") is sym("list->vector!?")

    def test_plus_minus_are_symbols(self):
        assert read("+") is sym("+")
        assert read("-") is sym("-")

    def test_true(self):
        assert read("#t") is True

    def test_false(self):
        assert read("#f") is False

    def test_string(self):
        assert read('"hello world"') == "hello world"

    def test_string_escapes(self):
        assert read(r'"a\nb\t\"q\\"') == 'a\nb\t"q\\'

    def test_char(self):
        assert read("#\\a") == Char("a")

    def test_named_chars(self):
        assert read("#\\space") == Char(" ")
        assert read("#\\newline") == Char("\n")
        assert read("#\\tab") == Char("\t")


class TestReaderLists:
    def test_empty_list(self):
        assert read("()") == []

    def test_flat_list(self):
        assert read("(1 2 3)") == [1, 2, 3]

    def test_nested(self):
        assert read("(a (b (c)) d)") == [
            sym("a"),
            [sym("b"), [sym("c")]],
            sym("d"),
        ]

    def test_square_brackets(self):
        assert read("[a b]") == [sym("a"), sym("b")]

    def test_mismatched_brackets_rejected(self):
        with pytest.raises(ReaderError):
            read("(a b]")

    def test_quote_shorthand(self):
        assert read("'x") == [sym("quote"), sym("x")]

    def test_quasiquote_shorthand(self):
        assert read("`(a ,b ,@c)") == [
            sym("quasiquote"),
            [
                sym("a"),
                [sym("unquote"), sym("b")],
                [sym("unquote-splicing"), sym("c")],
            ],
        ]

    def test_dotted_pair_rejected(self):
        with pytest.raises(ReaderError):
            read("(a . b)")


class TestReaderAtmosphere:
    def test_line_comments(self):
        assert read("; comment\n42 ; trailing") == 42

    def test_block_comments(self):
        assert read("#| block #| nested |# |# 7") == 7

    def test_unterminated_block_comment(self):
        with pytest.raises(ReaderError):
            read("#| open 7")

    def test_whitespace_varieties(self):
        assert read("\t\n\r  ( 1\n2 )") == [1, 2]


class TestReaderErrors:
    def test_empty_input(self):
        with pytest.raises(ReaderError):
            read("")

    def test_unterminated_list(self):
        with pytest.raises(ReaderError):
            read("(1 2")

    def test_unterminated_string(self):
        with pytest.raises(ReaderError):
            read('"abc')

    def test_stray_close(self):
        with pytest.raises(ReaderError):
            read(")")

    def test_trailing_input(self):
        with pytest.raises(ReaderError):
            read("1 2")

    def test_bad_char_name(self):
        with pytest.raises(ReaderError):
            read("#\\notachar")

    def test_bad_hash(self):
        with pytest.raises(ReaderError):
            read("#q")


class TestReadAll:
    def test_multiple_data(self):
        assert read_all("1 two (3)") == [1, sym("two"), [3]]

    def test_empty(self):
        assert read_all("  ; nothing\n") == []


class TestWriter:
    def test_integers(self):
        assert write(42) == "42"

    def test_booleans(self):
        assert write(True) == "#t"
        assert write(False) == "#f"

    def test_string_with_escapes(self):
        assert write('a"b\\c\nd') == '"a\\"b\\\\c\\nd"'

    def test_list(self):
        assert write([sym("a"), 1, [sym("b")]]) == "(a 1 (b))"

    def test_char(self):
        assert write(Char(" ")) == "#\\space"
        assert write(Char("x")) == "#\\x"

    def test_unwritable_raises(self):
        with pytest.raises(TypeError):
            write(object())


class TestSymbolInterning:
    def test_same_name_same_object(self):
        assert sym("abc") is sym("abc")

    def test_different_names_different_objects(self):
        assert sym("abc") is not sym("abd")

    def test_str(self):
        assert str(sym("hello")) == "hello"


class TestRoundTrip:
    @given(data)
    def test_read_write_roundtrip(self, datum):
        assert read(write(datum)) == datum

    @given(data)
    def test_write_is_stable(self, datum):
        text = write(datum)
        assert write(read(text)) == text
