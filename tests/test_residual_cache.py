"""The residual-code cache and thread-safe generating extensions.

Covers the tentpole of "built once ... applied any number of times"
(§3): a cache hit returns the already-generated residual program, the
LRU bound is respected, keys separate per dif-strategy and backend
kind, generation is single-flight under concurrency, and the
recursion-limit handling is a process-wide one-time floor instead of
the non-reentrant save/restore dance.
"""

import sys
import threading
import time
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.pe import SourceBackend, Specializer
from repro.pe.errors import BudgetExceeded
from repro.pe.limits import RECURSION_FLOOR, ensure_recursion_limit
from repro.pe.residual_cache import ResidualCache
from repro.rtcg import GeneratingExtension, run_specialized

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"
DIF = "(define (f s d) (* s (+ (if (zero? d) 10 20) 1)))"


# -- the cache data structure ---------------------------------------------------


class TestResidualCacheUnit:
    def test_hit_returns_same_object(self):
        cache = ResidualCache(4)
        r1, hit1 = cache.get_or_generate("k", lambda: object())
        r2, hit2 = cache.get_or_generate("k", lambda: object())
        assert r2 is r1
        assert (hit1, hit2) == (False, True)

    def test_lru_bound_and_eviction_order(self):
        cache = ResidualCache(2)
        cache.get_or_generate("a", lambda: "A")
        cache.get_or_generate("b", lambda: "B")
        cache.get_or_generate("a", lambda: "A2")  # refresh a
        cache.get_or_generate("c", lambda: "C")   # evicts b, not a
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.lookup("a") == "A"
        assert cache.lookup("b") is None

    def test_counters(self):
        cache = ResidualCache(4)
        cache.get_or_generate("k", lambda: 1)
        cache.get_or_generate("k", lambda: 1)
        cache.get_or_generate("j", lambda: 2)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["entries"] == 2
        assert stats["generation_seconds"] >= 0.0

    def test_disabled_cache_always_generates(self):
        cache = ResidualCache(0)
        calls = []
        for _ in range(3):
            _, hit = cache.get_or_generate("k", lambda: calls.append(1))
            assert not hit
        assert len(calls) == 3

    def test_producer_error_is_not_cached(self):
        cache = ResidualCache(4)
        with pytest.raises(ValueError):
            cache.get_or_generate("k", lambda: (_ for _ in ()).throw(ValueError()))
        result, hit = cache.get_or_generate("k", lambda: "ok")
        assert (result, hit) == ("ok", False)

    def test_peek_does_not_promote_lru_recency(self):
        # A monitor polling the cache must not keep polled keys warm:
        # after peeking the LRU entry, a capacity-exceeding insert
        # still evicts that entry, not a younger one.
        cache = ResidualCache(2)
        cache.get_or_generate("old", lambda: "O")
        cache.get_or_generate("young", lambda: "Y")
        assert cache.peek("old") == "O"       # no recency update
        cache.get_or_generate("new", lambda: "N")  # evicts "old"
        assert cache.peek("old") is None
        assert cache.peek("young") == "Y"
        assert cache.peek("new") == "N"

    def test_peek_does_not_touch_hit_miss_counters(self):
        cache = ResidualCache(2)
        cache.get_or_generate("k", lambda: "V")
        before = cache.stats()
        cache.peek("k")
        cache.peek("absent")
        after = cache.stats()
        assert (after["hits"], after["misses"]) == (
            before["hits"], before["misses"]
        )

    def test_lookup_by_contrast_does_promote(self):
        # The counterpart behaviour peek is defined against.
        cache = ResidualCache(2)
        cache.get_or_generate("old", lambda: "O")
        cache.get_or_generate("young", lambda: "Y")
        assert cache.lookup("old") == "O"     # promotes "old"
        cache.get_or_generate("new", lambda: "N")  # evicts "young"
        assert cache.peek("old") == "O"
        assert cache.peek("young") is None

    def test_single_flight_coalesces_concurrent_misses(self):
        cache = ResidualCache(4)
        calls = []
        started = threading.Event()
        release = threading.Event()

        def slow_produce():
            calls.append(1)
            started.set()
            release.wait(5)
            return "value"

        with ThreadPoolExecutor(max_workers=2) as ex:
            leader = ex.submit(cache.get_or_generate, "k", slow_produce)
            assert started.wait(5)
            follower = ex.submit(cache.get_or_generate, "k", slow_produce)
            time.sleep(0.05)  # let the follower block on the flight
            release.set()
            assert leader.result(5) == ("value", False)
            assert follower.result(5) == ("value", True)
        assert len(calls) == 1


# -- the generating-extension integration ---------------------------------------


class TestExtensionCache:
    def test_hit_returns_identical_residual(self):
        gen = GeneratingExtension(POWER, "DS", goal="power")
        r1 = gen.to_object_code([5])
        r2 = gen.to_object_code([5])
        # Each call gets its own stats view; the machine (the actual
        # residual code) is the shared cached artifact.
        assert r2.machine is r1.machine
        assert r1.run([2]) == 32
        assert r2.stats["cache_hit"]
        assert not r1.stats["cache_hit"]
        stats = gen.cache_stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_call_shorthand_shares_the_cache(self):
        # Satellite regression: __call__ used to drop verify/dif_strategy
        # on the floor, so ge(args) and ge.to_object_code(args, ...)
        # could disagree.  Now they are literally the same cached object.
        gen = GeneratingExtension(POWER, "DS", goal="power")
        assert gen([5]).machine is gen.to_object_code([5]).machine
        assert (
            gen([5], dif_strategy="join").machine
            is gen.to_object_code([5], dif_strategy="join").machine
        )
        assert (
            gen([5], verify=False).machine
            is gen.to_object_code([5], verify=False).machine
        )

    def test_keys_separate_per_dif_strategy(self):
        gen = GeneratingExtension(DIF, "SD", goal="f")
        dup = gen.to_object_code([7], dif_strategy="duplicate")
        join = gen.to_object_code([7], dif_strategy="join")
        assert dup is not join
        assert gen.cache_stats()["misses"] == 2
        assert dup.run([0]) == join.run([0]) == 77

    def test_keys_separate_per_backend_kind(self):
        gen = GeneratingExtension(POWER, "DS", goal="power")
        src = gen.to_source([5])
        obj = gen.to_object_code([5])
        unverified = gen.to_object_code([5], verify=False)
        assert src.program is not None and obj.machine is not None
        assert obj is not unverified
        assert gen.cache_stats()["misses"] == 3

    def test_lru_bound_respected(self):
        gen = GeneratingExtension(POWER, "DS", goal="power", cache_size=2)
        for n in (1, 2, 3):
            gen.to_object_code([n])
        stats = gen.cache_stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # The evicted entry ([1]) regenerates: a miss, not a hit.
        gen.to_object_code([1])
        assert gen.cache_stats()["misses"] == 4

    def test_cache_can_be_disabled(self):
        gen = GeneratingExtension(POWER, "DS", goal="power", cache_size=0)
        r1 = gen.to_object_code([5])
        r2 = gen.to_object_code([5])
        assert r1 is not r2
        assert "cache_hit" not in r1.stats

    def test_bypass_regenerates_deterministically(self):
        # Per-run gensym isolation: regeneration of the same static
        # input is byte-identical, so a cache hit is indistinguishable
        # from a regeneration.
        gen = GeneratingExtension(POWER, "DS", goal="power")
        r1 = gen.to_object_code([6], use_cache=False)
        r2 = gen.to_object_code([6], use_cache=False)
        assert r1 is not r2
        assert r1.fingerprint() == r2.fingerprint()
        assert r1.fingerprint() == gen.to_object_code([6]).fingerprint()

    def test_source_hits_too(self):
        gen = GeneratingExtension(POWER, "DS", goal="power")
        assert gen.to_source([4]).program is gen.to_source([4]).program

    def test_cache_clear(self):
        gen = GeneratingExtension(POWER, "DS", goal="power")
        gen.to_object_code([5])
        gen.cache_clear()
        assert gen.cache_stats()["entries"] == 0
        gen.to_object_code([5])
        assert gen.cache_stats()["misses"] == 2

    def test_cogen_path_caches_when_asked(self):
        gen = GeneratingExtension(POWER, "DS", goal="power")
        ext = gen.compiled()
        r1 = ext.generate([5], use_cache=True)
        r2 = ext.generate([5], use_cache=True)
        assert r2.program is r1.program
        assert r2.stats["cache_hit"] and not r1.stats["cache_hit"]
        # Default stays uncached (benchmarks measure real generation).
        assert ext.generate([5]).program is not r1.program


class TestForwarding:
    def test_run_specialized_forwards_dif_strategy(self):
        # Satellite regression: dif_strategy used to be swallowed by
        # make_generating_extension's kwargs and raise TypeError.
        assert (
            run_specialized(DIF, "SD", [7], [0], goal="f", dif_strategy="join")
            == 77
        )
        assert (
            run_specialized(DIF, "SD", [7], [1], goal="f", verify=False)
            == 147
        )


# -- concurrency ---------------------------------------------------------------


class TestConcurrentGeneration:
    def test_eight_thread_stress_byte_identical_residuals(self):
        gen = GeneratingExtension(POWER, "DS", goal="power", cache_size=64)
        statics = list(range(6))

        def task(i):
            n = statics[i % len(statics)]
            rp = gen.to_object_code([n])
            assert rp.run([2]) == 2**n
            return n, rp.fingerprint()

        with ThreadPoolExecutor(max_workers=8) as ex:
            results = list(ex.map(task, range(96)))

        fingerprints = defaultdict(set)
        for n, fp in results:
            fingerprints[n].add(fp)
        assert all(len(fps) == 1 for fps in fingerprints.values()), (
            "residual code must be byte-identical per static input"
        )
        stats = gen.cache_stats()
        # Single-flight: each distinct static input generated exactly once.
        assert stats["misses"] == len(statics)
        assert stats["hits"] == 96 - len(statics)

    def test_eight_thread_stress_without_cache(self):
        # Even with the cache bypassed (every call runs the full
        # specializer) concurrent runs must not interfere: private
        # gensym state per run keeps residuals byte-identical.
        gen = GeneratingExtension(POWER, "DS", goal="power")

        def task(i):
            n = i % 3
            rp = gen.to_object_code([n], use_cache=False)
            assert rp.run([3]) == 3**n
            return n, rp.fingerprint()

        with ThreadPoolExecutor(max_workers=8) as ex:
            results = list(ex.map(task, range(32)))
        fingerprints = defaultdict(set)
        for n, fp in results:
            fingerprints[n].add(fp)
        assert all(len(fps) == 1 for fps in fingerprints.values())


# -- the recursion-limit floor --------------------------------------------------


class _NestingBackend(SourceBackend):
    """A backend that fires a nested specialization from inside a run."""

    def __init__(self, gen: GeneratingExtension):
        super().__init__()
        self._gen = gen
        self.nested_ran = False

    def define(self, name, params, body):
        if not self.nested_ran:
            self.nested_ran = True
            inner = self._gen.to_source([3], use_cache=False)
            assert inner.run([2]) == 8
        super().define(name, params, body)


class TestRecursionLimitFloor:
    def test_ensure_is_monotone(self):
        before = sys.getrecursionlimit()
        ensure_recursion_limit()
        assert sys.getrecursionlimit() >= max(before, RECURSION_FLOOR)
        # A second call (or a lower floor) never lowers it.
        ensure_recursion_limit(10)
        assert sys.getrecursionlimit() >= RECURSION_FLOOR

    def test_nested_run_does_not_clobber_the_limit(self):
        # Regression: the old save/restore in Specializer.run and
        # cogen.generate was not reentrant — after a nested run, the
        # outer ``finally`` restored a stale (low) limit.
        sys.setrecursionlimit(5_000)
        try:
            gen = GeneratingExtension(POWER, "DS", goal="power")
            backend = _NestingBackend(gen)
            outer = Specializer(gen.bta.annotated, backend).run([4])
            assert backend.nested_ran
            assert outer.run([2]) == 16
            assert sys.getrecursionlimit() >= RECURSION_FLOOR, (
                "nested run clobbered the process recursion limit"
            )
        finally:
            ensure_recursion_limit()

    def test_cogen_generate_keeps_the_floor(self):
        sys.setrecursionlimit(5_000)
        try:
            gen = GeneratingExtension(POWER, "DS", goal="power")
            ext = gen.compiled()
            ext.generate([4])
            assert sys.getrecursionlimit() >= RECURSION_FLOOR
        finally:
            ensure_recursion_limit()


# -- per-call stats views (shared-state race regression) ------------------------


class TestExtensionPeek:
    def test_peek_reports_warmth_without_generating(self):
        gen = GeneratingExtension(POWER, "DS", goal="power")
        assert gen.peek([5]) is None
        residual = gen.to_object_code([5])
        peeked = gen.peek([5])
        assert peeked is not None
        assert peeked.machine is residual.machine
        assert gen.cache_stats()["misses"] == 1  # peek generated nothing

    def test_peek_respects_key_dimensions(self):
        gen = GeneratingExtension(POWER, "DS", goal="power")
        gen.to_object_code([5])
        assert gen.peek([5], dif_strategy="join") is None
        assert gen.peek([5], kind="source") is None
        assert gen.peek([6]) is None

    def test_peek_on_disabled_cache(self):
        gen = GeneratingExtension(POWER, "DS", goal="power", cache_size=0)
        gen.to_object_code([5])
        assert gen.peek([5]) is None


class TestCacheStatsSnapshot:
    def test_snapshot_is_decoupled_from_later_activity(self):
        gen = GeneratingExtension(POWER, "DS", goal="power")
        gen.to_object_code([5])
        snapshot = gen.cache_stats()
        stages_before = {
            name: dict(entry)
            for name, entry in snapshot["stages"].items()
        }
        gen.to_object_code([6])
        gen.to_object_code([7])
        assert snapshot["misses"] == 1
        assert snapshot["stages"] == stages_before

    def test_two_thread_stats_iteration_race(self):
        # Regression: ``cache_stats`` used to hand out references to
        # the live per-stage dicts, so a reader iterating the stages
        # while another thread specialized raced the writer (mutated
        # values mid-iteration; ``RuntimeError: dictionary changed size
        # during iteration`` once a new stage appeared).  The snapshot
        # is now a deep copy taken under the stats lock.
        import json

        gen = GeneratingExtension(POWER, "DS", goal="power")
        gen.to_object_code([1])
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    json.dumps(gen.cache_stats(), default=str)
                except RuntimeError as exc:  # pragma: no cover - the bug
                    failures.append(exc)
                    return

        def writer():
            for n in range(2, 40):
                gen.to_object_code([n])
                gen.to_source([n])

        t_reader = threading.Thread(target=reader)
        t_writer = threading.Thread(target=writer)
        t_reader.start()
        t_writer.start()
        t_writer.join(60)
        stop.set()
        t_reader.join(10)
        assert not failures


class TestPerCallStatsViews:
    def test_two_threads_each_see_their_own_cache_hit(self):
        # Regression: _generate used to write ``cache_hit`` into the
        # *shared cached* ResidualProgram's stats dict, so a later hit
        # clobbered the producer's False before it could be read.  With
        # per-call views, each caller's view is private.
        gen = GeneratingExtension(POWER, "DS", goal="power")
        barrier = threading.Barrier(2)
        produced = threading.Event()

        def producer():
            barrier.wait(5)
            rp = gen.to_object_code([9])
            produced.set()
            time.sleep(0.05)  # give the hitter time to race a mutation
            return rp.stats["cache_hit"]

        def hitter():
            barrier.wait(5)
            assert produced.wait(5)
            return gen.to_object_code([9]).stats["cache_hit"]

        with ThreadPoolExecutor(max_workers=2) as ex:
            f1 = ex.submit(producer)
            f2 = ex.submit(hitter)
            assert f1.result(10) is False, (
                "the generating caller must see cache_hit=False even"
                " after a concurrent hit on the same key"
            )
            assert f2.result(10) is True

    def test_cached_object_stats_stay_clean(self):
        # The object stored in the cache must never accumulate per-call
        # keys; only production facts (residual_defs, image_*...) live
        # there.
        gen = GeneratingExtension(POWER, "DS", goal="power")
        gen.to_object_code([5])
        gen.to_object_code([5])
        key = next(iter(gen.cache._entries))
        cached = gen.cache._entries[key]
        assert "cache_hit" not in cached.stats
        assert "cache" not in cached.stats

    def test_view_shares_machine_and_production_stats(self):
        gen = GeneratingExtension(POWER, "DS", goal="power")
        r1 = gen.to_object_code([5])
        r2 = gen.to_object_code([5])
        assert r1.machine is r2.machine
        assert r1.stats["residual_defs"] == r2.stats["residual_defs"]
        # Mutating one view must not leak into the other.
        r1.stats["marker"] = "mine"
        assert "marker" not in r2.stats


# -- single-flight failure discipline -------------------------------------------


class TestSingleFlightFailure:
    def test_waiters_see_the_leaders_error_and_key_is_not_poisoned(self):
        cache = ResidualCache(8)
        started = threading.Event()
        release = threading.Event()

        def failing_produce():
            started.set()
            release.wait(5)
            raise ValueError("boom")

        with ThreadPoolExecutor(max_workers=3) as ex:
            leader = ex.submit(cache.get_or_generate, "k", failing_produce)
            assert started.wait(5)
            w1 = ex.submit(cache.get_or_generate, "k", failing_produce)
            w2 = ex.submit(cache.get_or_generate, "k", failing_produce)
            time.sleep(0.05)  # let the waiters block on the flight
            release.set()
            for fut in (leader, w1, w2):
                with pytest.raises(ValueError, match="boom"):
                    fut.result(5)
        # The key must not be wedged: the next attempt generates fresh.
        result, hit = cache.get_or_generate("k", lambda: "recovered")
        assert (result, hit) == ("recovered", False)

    def test_eight_thread_stress_with_flaky_producer(self):
        # Alongside the existing 8-thread suites: a producer that fails
        # on its first few runs must neither deadlock any waiter nor
        # poison the key; once it succeeds, everyone hits.
        cache = ResidualCache(8)
        failures_left = [3]
        lock = threading.Lock()

        def flaky_produce():
            with lock:
                if failures_left[0] > 0:
                    failures_left[0] -= 1
                    fail = True
                else:
                    fail = False
            time.sleep(0.005)
            if fail:
                raise ValueError("transient")
            return "steady"

        def task(_):
            try:
                return cache.get_or_generate("k", flaky_produce)[0]
            except ValueError:
                return "failed"

        with ThreadPoolExecutor(max_workers=8) as ex:
            results = list(ex.map(task, range(64)))
        assert "steady" in results, "the producer never recovered"
        # Every call either got the value or saw a transient error —
        # nothing hung (ex.map returning at all proves no deadlock).
        assert set(results) <= {"steady", "failed"}
        result, hit = cache.get_or_generate("k", flaky_produce)
        assert (result, hit) == ("steady", True)

    def test_budget_exceeded_propagates_and_extension_recovers(self):
        # The real failure mode from the issue: BudgetExceeded from the
        # specializer inside the single flight.
        gen = GeneratingExtension(
            POWER, "DS", goal="power", max_residual_size=1
        )
        with ThreadPoolExecutor(max_workers=4) as ex:
            futures = [
                ex.submit(gen.to_object_code, [4]) for _ in range(8)
            ]
            for fut in futures:
                with pytest.raises(BudgetExceeded):
                    fut.result(10)
        assert gen.cache_stats()["budget_trips"] >= 1
        assert len(gen.cache) == 0, "failed generations must not be cached"
