"""Tests for the algebraic framework of §5: functors, catamorphisms, fusion."""

from hypothesis import given, settings

from repro.cata import (
    ConstructorAlgebra,
    CountAlgebra,
    EvalAlgebra,
    FreeVarsAlgebra,
    UnparseAlgebra,
    cata,
    fuse,
    mk_syntax_children,
    mk_syntax_map,
)
from repro.cata.fusion_law import unfused
from repro.interp import Interpreter
from repro.lang import (
    Prim,
    count_nodes,
    free_variables,
    parse_expr,
    unparse,
)
from repro.sexp import sym, write
from tests.strategies import arith_exprs, higher_order_exprs

EXAMPLES = [
    "42",
    "x",
    "(lambda (x y) (+ x y))",
    "(let ((x 1)) (if (< x 2) x (* x x)))",
    "((lambda (f) (f 1)) (lambda (y) y))",
    "(cons 1 '(2 3))",
]


class TestFunctor:
    def test_identity_law(self):
        for src in EXAMPLES:
            e = parse_expr(src)
            assert mk_syntax_map(lambda x: x, e) == e

    def test_composition_law(self):
        # MkSyntax(f ∘ g) == MkSyntax(f) ∘ MkSyntax(g)
        def f(e):
            return Prim(sym("not"), (e,))

        def g(e):
            return Prim(sym("null?"), (e,))

        for src in EXAMPLES:
            e = parse_expr(src)
            left = mk_syntax_map(lambda x: f(g(x)), e)
            right = mk_syntax_map(f, mk_syntax_map(g, e))
            assert left == right

    def test_children_match_map_positions(self):
        for src in EXAMPLES:
            e = parse_expr(src)
            seen = []
            mk_syntax_map(lambda x: (seen.append(x), x)[1], e)
            assert tuple(seen) == mk_syntax_children(e)


class TestCatamorphisms:
    def test_constructor_algebra_is_identity(self):
        for src in EXAMPLES:
            e = parse_expr(src)
            assert cata(ConstructorAlgebra(), e) == e

    @given(higher_order_exprs())
    @settings(max_examples=30)
    def test_constructor_identity_random(self, src):
        e = parse_expr(src)
        assert cata(ConstructorAlgebra(), e) == e

    def test_count_algebra_matches_walk(self):
        for src in EXAMPLES:
            e = parse_expr(src)
            assert cata(CountAlgebra(), e) == count_nodes(e)

    def test_freevars_algebra_matches_direct(self):
        for src in EXAMPLES:
            e = parse_expr(src)
            assert cata(FreeVarsAlgebra(), e) == free_variables(e)

    @given(higher_order_exprs())
    @settings(max_examples=30)
    def test_freevars_random(self, src):
        e = parse_expr(src)
        assert cata(FreeVarsAlgebra(), e) == free_variables(e)

    def test_unparse_algebra_matches_direct(self):
        for src in EXAMPLES:
            e = parse_expr(src)
            assert write(cata(UnparseAlgebra(), e)) == write(unparse(e))

    @given(arith_exprs())
    @settings(max_examples=30)
    def test_eval_algebra_matches_interpreter(self, src):
        e = parse_expr(src)
        meaning = cata(EvalAlgebra(), e)
        assert meaning({}) == Interpreter().eval(e, None)

    def test_eval_algebra_staging(self):
        # The dispatch happens once: the same meaning can be applied to
        # many environments.
        e = parse_expr("(+ x (* y 2))")
        meaning = cata(EvalAlgebra(), e)
        assert meaning({sym("x"): 1, sym("y"): 2}) == 5
        assert meaning({sym("x"): 10, sym("y"): 0}) == 10


def _double_producer(algebra):
    """A producer parameterized over syntax constructors: builds the
    expression (+ input input) around a given expression."""

    def produce(e):
        lifted = cata(algebra, e)  # rebuild/interpret e through the algebra
        return algebra.ev_prim(sym("+"), [lifted, lifted])

    return produce


def _wrap_lambda_producer(algebra):
    """Builds (lambda (v) (if v <e> <e>)) through the constructors."""

    def produce(e):
        v = sym("v")
        body = algebra.ev_if(
            algebra.ev_var(v), cata(algebra, e), cata(algebra, e)
        )
        return algebra.ev_lam((v,), body)

    return produce


class TestFusionLaw:
    @given(arith_exprs())
    @settings(max_examples=30)
    def test_count_fusion(self, src):
        e = parse_expr(src)
        two_pass = unfused(CountAlgebra(), _double_producer)
        one_pass = fuse(CountAlgebra(), _double_producer)
        assert two_pass(e) == one_pass(e)

    @given(arith_exprs())
    @settings(max_examples=30)
    def test_freevars_fusion(self, src):
        e = parse_expr(src)
        two_pass = unfused(FreeVarsAlgebra(), _wrap_lambda_producer)
        one_pass = fuse(FreeVarsAlgebra(), _wrap_lambda_producer)
        assert two_pass(e) == one_pass(e)

    @given(arith_exprs(depth=2))
    @settings(max_examples=20)
    def test_eval_fusion(self, src):
        e = parse_expr(src)
        two_pass = unfused(EvalAlgebra(), _double_producer)
        one_pass = fuse(EvalAlgebra(), _double_producer)
        assert two_pass(e)({}) == one_pass(e)({})

    def test_unfused_rejects_non_syntax_producer(self):
        import pytest

        def bad_factory(algebra):
            return lambda e: 42

        with pytest.raises(TypeError):
            unfused(CountAlgebra(), bad_factory)(parse_expr("1"))
