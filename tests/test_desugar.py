"""Tests for the desugarer, via evaluation of desugared forms."""

import pytest

from repro.lang import DesugarError, desugar, parse_expr
from repro.sexp import read, sym
from tests.helpers import interp_datum, interp_expr


class TestBegin:
    def test_empty_begin_is_void(self):
        from repro.runtime.values import UNSPECIFIED

        assert interp_expr("(begin)") is UNSPECIFIED

    def test_single(self):
        assert interp_expr("(begin 5)") == 5

    def test_sequence_returns_last(self):
        assert interp_expr("(begin 1 2 3)") == 3

    def test_sequence_preserves_order(self, capsys):
        interp_expr('(begin (display "a") (display "b") (void))')
        assert capsys.readouterr().out == "ab"


class TestLet:
    def test_multi_binding_parallel(self):
        # Parallel semantics: the x in y's rhs is unbound/free, so use
        # shadowing to observe parallelism.
        assert interp_expr("(let ((x 1)) (let ((x 2) (y x)) (+ (* 10 x) y)))") == 21

    def test_zero_bindings(self):
        assert interp_expr("(let () 42)") == 42

    def test_let_star_sequential(self):
        assert interp_expr("(let* ((x 1) (y (+ x 1)) (z (* y 3))) z)") == 6

    def test_named_let_loop(self):
        assert (
            interp_expr(
                "(let loop ((i 0) (acc 0)) (if (= i 10) acc (loop (+ i 1) (+ acc i))))"
            )
            == 45
        )

    def test_letrec_mutual(self):
        src = """
        (letrec ((even? (lambda (n) (if (= n 0) #t (odd? (- n 1)))))
                 (odd?  (lambda (n) (if (= n 0) #f (even? (- n 1))))))
          (even? 10))
        """
        assert interp_expr(src) is True

    def test_malformed_let_rejected(self):
        with pytest.raises(DesugarError):
            parse_expr("(let (x 1) x 2 3 4 5)") if False else desugar(
                read("(let ((1 2)) 3)")
            )


class TestCond:
    def test_first_true_clause(self):
        assert interp_expr("(cond ((= 1 2) 'a) ((= 1 1) 'b) (else 'c))") is sym("b")

    def test_else(self):
        assert interp_expr("(cond (#f 1) (else 2))") == 2

    def test_no_match_is_void(self):
        from repro.runtime.values import UNSPECIFIED

        assert interp_expr("(cond (#f 1))") is UNSPECIFIED

    def test_test_only_clause_returns_test(self):
        assert interp_expr("(cond (#f) (42) (else 0))") == 42

    def test_multi_expression_body(self, capsys):
        assert interp_expr('(cond (#t (display "x") 7))') == 7
        assert capsys.readouterr().out == "x"

    def test_else_not_last_rejected(self):
        with pytest.raises(DesugarError):
            desugar(read("(cond (else 1) (#t 2))"))


class TestCase:
    def test_matching_clause(self):
        assert interp_expr("(case (+ 1 2) ((1 2) 'small) ((3 4) 'mid) (else 'big))") is sym(
            "mid"
        )

    def test_else_clause(self):
        assert interp_expr("(case 99 ((1) 'one) (else 'other))") is sym("other")

    def test_key_evaluated_once(self, capsys):
        interp_expr('(case (begin (display "!") 1) ((1) (void)) (else (void)))')
        assert capsys.readouterr().out == "!"


class TestAndOr:
    def test_and_empty(self):
        assert interp_expr("(and)") is True

    def test_and_short_circuit(self, capsys):
        assert interp_expr('(and #f (display "no"))') is False
        assert capsys.readouterr().out == ""

    def test_and_returns_last(self):
        assert interp_expr("(and 1 2 3)") == 3

    def test_or_empty(self):
        assert interp_expr("(or)") is False

    def test_or_short_circuit(self, capsys):
        assert interp_expr('(or 7 (display "no"))') == 7
        assert capsys.readouterr().out == ""

    def test_or_returns_first_truthy(self):
        assert interp_expr("(or #f #f 9)") == 9


class TestWhenUnless:
    def test_when_true(self):
        assert interp_expr("(when (< 1 2) 1 2 3)") == 3

    def test_when_false(self):
        from repro.runtime.values import UNSPECIFIED

        assert interp_expr("(when #f 1)") is UNSPECIFIED

    def test_unless(self):
        assert interp_expr("(unless #f 'yes)") is sym("yes")


class TestIf:
    def test_two_armed_if(self):
        from repro.runtime.values import UNSPECIFIED

        assert interp_expr("(if #f 1)") is UNSPECIFIED
        assert interp_expr("(if #t 1)") == 1


class TestQuasiquote:
    def test_plain(self):
        assert interp_datum("`(1 2 3)") == [1, 2, 3]

    def test_unquote(self):
        assert interp_datum("`(1 ,(+ 1 1) 3)") == [1, 2, 3]

    def test_unquote_splicing(self):
        assert interp_datum("`(0 ,@(list 1 2) 3)") == [0, 1, 2, 3]

    def test_nested_structure(self):
        assert interp_datum("`((a ,(* 2 2)) b)") == [[sym("a"), 4], sym("b")]

    def test_nested_quasiquote_preserved(self):
        assert interp_datum("`(x `(y ,(z)))") == [
            sym("x"),
            [sym("quasiquote"), [sym("y"), [sym("unquote"), [sym("z")]]]],
        ]


class TestDesugarErrors:
    def test_empty_lambda_body(self):
        with pytest.raises(DesugarError):
            desugar(read("(lambda (x))"))

    def test_bad_set(self):
        with pytest.raises(DesugarError):
            desugar(read("(set! (a) 1)"))
