"""Properties of §6.4's static-value freezing (the memo-key function).

The residual cache and the specializer's memo table both key on
:func:`repro.pe.values.freeze_static`, so freezing must be

* **total** over every value a host program can pass as a static
  argument (Scheme data *and* Python containers — dicts, sets, tuples),
* **hashable** — a frozen key goes straight into a dict,
* **injective up to equality** — equal values share a key, unequal
  values never collide (a collision would silently serve residual code
  generated for a *different* static input), and
* **defined on cycles** by raising a clear
  :class:`~repro.pe.errors.SpecializationError`, never by recursing
  forever or leaking a bare ``TypeError`` out of ``dict.get``.
"""

import pytest
from hypothesis import given, settings

from repro.pe.errors import SpecializationError
from repro.pe.values import FreezeCache, freeze_static
from repro.runtime.values import Pair, datum_to_value, scheme_equal
from repro.rtcg import GeneratingExtension
from tests.strategies import data, python_statics

IDENTITY = "(define (f s d) d)"


class TestTotalAndHashable:
    @given(data)
    @settings(max_examples=150, deadline=None)
    def test_scheme_data(self, d):
        frozen = freeze_static(datum_to_value(d))
        hash(frozen)  # must not raise

    @given(python_statics)
    @settings(max_examples=150, deadline=None)
    def test_python_containers(self, value):
        hash(freeze_static(value))  # must not raise

    def test_unhashable_unknown_object_is_identity_tagged(self):
        class Opaque:
            __hash__ = None  # type: ignore[assignment]

        a, b = Opaque(), Opaque()
        assert freeze_static(a) == freeze_static(a)
        assert freeze_static(a) != freeze_static(b)
        hash(freeze_static(a))


class TestInjectiveUpToEquality:
    @given(data, data)
    @settings(max_examples=200, deadline=None)
    def test_scheme_data_keys_coincide_iff_equal(self, d1, d2):
        v1, v2 = datum_to_value(d1), datum_to_value(d2)
        assert (freeze_static(v1) == freeze_static(v2)) == scheme_equal(v1, v2)

    @given(python_statics, python_statics)
    @settings(max_examples=200, deadline=None)
    def test_python_containers_never_collide(self, a, b):
        # Injectivity: a key collision implies the values are equal.
        # (The converse can fail for Python's 1 == True coercions, which
        # freezing deliberately distinguishes by type.)
        if freeze_static(a) == freeze_static(b):
            assert a == b

    def test_dict_key_is_insertion_order_independent(self):
        assert freeze_static({"a": 1, "b": 2}) == freeze_static(
            {"b": 2, "a": 1}
        )

    def test_set_key_is_order_independent(self):
        assert freeze_static({3, 1, 2}) == freeze_static({2, 3, 1})
        assert freeze_static(frozenset({1})) == freeze_static({1})

    def test_bool_and_int_do_not_collide(self):
        assert freeze_static(True) != freeze_static(1)
        assert freeze_static([True]) != freeze_static([1])


class TestCycles:
    def test_cyclic_pair_raises(self):
        p = Pair(1, 2)
        p.cdr = p
        with pytest.raises(SpecializationError, match="cyclic"):
            freeze_static(p)

    def test_cyclic_pair_through_car_raises(self):
        p = Pair(1, Pair(2, 3))
        p.cdr.car = p
        with pytest.raises(SpecializationError, match="cyclic"):
            freeze_static(p)

    def test_cyclic_list_raises(self):
        cycle: list = [1]
        cycle.append(cycle)
        with pytest.raises(SpecializationError, match="cyclic"):
            freeze_static(cycle)

    def test_cyclic_dict_raises(self):
        d: dict = {}
        d["self"] = d
        with pytest.raises(SpecializationError, match="cyclic"):
            freeze_static(d)

    def test_shared_but_acyclic_structure_is_fine(self):
        shared = Pair(1, Pair(2, datum_to_value([])))
        dag = Pair(shared, Pair(shared, datum_to_value([])))
        assert freeze_static(dag) == freeze_static(
            datum_to_value([[1, 2], [1, 2]])
        )


class TestFreezeCacheAgreement:
    @given(data)
    @settings(max_examples=100, deadline=None)
    def test_cache_matches_uncached(self, d):
        value = datum_to_value(d)
        cache = FreezeCache()
        assert cache.freeze(value) == freeze_static(value)
        # Second freeze is an identity hit and must agree too.
        assert cache.freeze(value) == freeze_static(value)

    def test_cache_detects_cycles(self):
        p = Pair(1, 2)
        p.cdr = p
        with pytest.raises(SpecializationError, match="cyclic"):
            FreezeCache().freeze(p)


class TestEndToEnd:
    def test_dict_valued_static_specializes(self):
        # Regression: this used to crash Specializer._memoize with a
        # bare TypeError (unhashable memo key) deep inside dict.get.
        gen = GeneratingExtension(IDENTITY, "SD", goal="f")
        assert gen.to_source([{"a": 1}]).run([7]) == 7
        assert gen.to_object_code([{"a": 1}]).run([8]) == 8

    def test_equal_dict_statics_share_a_cache_entry(self):
        gen = GeneratingExtension(IDENTITY, "SD", goal="f")
        r1 = gen.to_object_code([{"a": 1, "b": 2}])
        r2 = gen.to_object_code([{"b": 2, "a": 1}])
        # Callers get per-call stat views; the artifact itself is shared.
        assert r1.machine is r2.machine
        assert r2.stats["cache_hit"]

    def test_cyclic_static_raises_specialization_error(self):
        gen = GeneratingExtension(IDENTITY, "SD", goal="f")
        p = Pair(1, 2)
        p.cdr = p
        with pytest.raises(SpecializationError, match="cyclic"):
            gen.to_object_code([p])
