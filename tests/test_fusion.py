"""Tests for the composition (fusion): the paper's central theorem.

For every program p and static input s::

    compile(specialize_src(p, s))  ≅  specialize_obj(p, s)

We check it both *observationally* (same results on the VM) and
*structurally* (identical disassembled templates) — structural equality is
exactly what the deforestation argument of §5.4 promises.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import ObjectCodeBackend, compile_program
from repro.lang import parse_program
from repro.pe import SourceBackend, Specializer, analyze
from repro.runtime.values import datum_to_value, scheme_equal
from repro.vm import disassemble


def both_routes(src, signature, static_args, goal=None, **kw):
    from repro.lang import Gensym

    program = parse_program(src, goal=goal)
    res = analyze(program, signature, **kw)
    rp_src = Specializer(
        res.annotated, SourceBackend(), name_gensym=Gensym("f")
    ).run(static_args)
    compiled = compile_program(rp_src.program, compiler="anf")
    be = ObjectCodeBackend()
    rp_obj = Specializer(res.annotated, be, name_gensym=Gensym("f")).run(
        static_args
    )
    return program, rp_src, compiled, rp_obj, be


def assert_fused(src, signature, static_args, dynamic_args, goal=None, **kw):
    program, rp_src, compiled, rp_obj, be = both_routes(
        src, signature, static_args, goal=goal, **kw
    )
    r1 = compiled.run(dynamic_args)
    r2 = rp_obj.run(dynamic_args)
    assert scheme_equal(r1, r2), f"{r1!r} != {r2!r}"
    # Structural equality of the emitted object code.
    names1 = sorted(compiled.templates, key=lambda s: s.name)
    names2 = sorted(be.templates, key=lambda s: s.name)
    assert [n.name for n in names1] == [n.name for n in names2]
    for n1, n2 in zip(names1, names2):
        assert disassemble(compiled.templates[n1]) == disassemble(
            be.templates[n2]
        ), f"template {n1} differs"
    return r2


POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


class TestFusionTheorem:
    def test_power(self):
        assert_fused(POWER, "DS", [7], [2])

    def test_power_dynamic_recursion(self):
        assert_fused(POWER, "SD", [3], [5])

    def test_list_program(self):
        src = """
        (define (app xs ys) (if (null? xs) ys (cons (car xs) (app (cdr xs) ys))))
        """
        assert_fused(
            src, "SD", [datum_to_value([1, 2])], [datum_to_value([3])],
            goal="app",
        )

    def test_residual_closures(self):
        src = """
        (define (make-add d) (lambda (x) (+ x d)))
        (define (main d e) (let ((f (make-add d))) (f (f e))))
        """
        assert_fused(src, "DD", [], [10, 1], goal="main")

    def test_memoized_loops(self):
        src = """
        (define (iter s d) (if (zero? d) s (iter (cons 'x s) (- d 1))))
        """
        # s static but growing is caught elsewhere; here s dynamic:
        assert_fused(src, "DD", [], [datum_to_value([]), 4], goal="iter")

    def test_conditionals_in_value_position(self):
        src = """
        (define (f s d) (+ (if (zero? d) 1 2) s))
        """
        program = parse_program(src, goal="f")
        res = analyze(program, "SD")
        be = ObjectCodeBackend()
        rp = Specializer(res.annotated, be).run([100])
        assert rp.run([0]) == 101
        assert rp.run([9]) == 102

    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=-20, max_value=20),
    )
    @settings(max_examples=20)
    def test_fusion_random_power(self, n, x):
        result = assert_fused(POWER, "DS", [n], [x])
        assert result == x**n

    def test_workload_mixwell(self):
        from repro.workloads import (
            MIXWELL_SIGNATURE,
            MIXWELL_SOURCE,
            MIXWELL_GOAL,
            mixwell_tm_program,
        )

        tape = datum_to_value([1, 0, 1, 1])
        assert_fused(
            MIXWELL_SOURCE,
            MIXWELL_SIGNATURE,
            [mixwell_tm_program()],
            [tape],
            goal=MIXWELL_GOAL,
        )

    def test_workload_lazy(self):
        from repro.workloads import (
            LAZY_SIGNATURE,
            LAZY_SOURCE,
            LAZY_GOAL,
            lazy_primes_program,
        )

        assert_fused(
            LAZY_SOURCE,
            LAZY_SIGNATURE,
            [lazy_primes_program()],
            [3],
            goal=LAZY_GOAL,
        )


class TestObjectBackendBehaviour:
    def test_residual_program_reports_machine(self):
        program = parse_program(POWER, goal="power")
        res = analyze(program, "DS")
        rp = Specializer(res.annotated, ObjectCodeBackend()).run([4])
        assert rp.machine is not None
        assert rp.program is None
        assert rp.run([3]) == 81

    def test_many_specializations_share_backend_machine(self):
        # Incremental specialization: several residual programs can be
        # installed in one machine (they get distinct specialized names).
        program = parse_program(POWER, goal="power")
        res = analyze(program, "DS")
        be = ObjectCodeBackend()
        rp2 = Specializer(res.annotated, be).run([2])
        rp3 = Specializer(res.annotated, be).run([3])
        assert rp2.run([5]) == 25
        assert rp3.run([5]) == 125

    def test_deep_residual_loop_is_tail_recursive(self):
        src = "(define (loop n acc) (if (zero? n) acc (loop (- n 1) (+ acc 1))))"
        program = parse_program(src, goal="loop")
        res = analyze(program, "DD")
        rp = Specializer(res.annotated, ObjectCodeBackend()).run([])
        assert rp.run([300000, 0]) == 300000

    def test_unknown_primitive_rejected(self):
        from repro.pe.errors import SpecializationError
        from repro.sexp import sym

        be = ObjectCodeBackend()
        with pytest.raises(SpecializationError):
            be.prim(sym("definitely-not-a-prim"), [])
