"""Edge-case and small-unit tests across the system."""

import pytest

from repro.lang import Gensym, parse_expr, parse_program
from repro.runtime.errors import PrimitiveError, SchemeError
from repro.sexp import sym
from tests.helpers import interp_expr


class TestGensym:
    def test_fresh_names_are_distinct(self):
        gs = Gensym()
        names = {gs.fresh() for _ in range(100)}
        assert len(names) == 100

    def test_hint_prefix_survives(self):
        gs = Gensym()
        name = gs.fresh("loop")
        assert name.name.startswith("loop%")

    def test_hint_stripped_of_previous_counter(self):
        gs = Gensym()
        first = gs.fresh("x")
        second = gs.fresh(first)
        assert second.name.startswith("x%")
        assert second.name.count("%") == 1

    def test_reset(self):
        gs = Gensym()
        a = gs.fresh()
        gs.reset()
        assert gs.fresh() is a


class TestPrimEdgeCases:
    def test_unary_minus(self):
        assert interp_expr("(- 5)") == -5

    def test_unary_division_is_reciprocal(self):
        assert interp_expr("(/ 4)") == 0.25
        assert interp_expr("(/ 1)") == 1

    def test_plus_with_no_args(self):
        assert interp_expr("(+)") == 0

    def test_times_with_no_args(self):
        assert interp_expr("(*)") == 1

    def test_booleans_are_not_numbers(self):
        with pytest.raises(PrimitiveError):
            interp_expr("(+ #t 1)")

    def test_append_no_args(self):
        from repro.runtime.values import NIL

        assert interp_expr("(append)") is NIL

    def test_append_shares_last(self):
        # (append '() xs) returns xs itself.
        assert interp_expr("(let ((xs '(1))) (eq? (append '() xs) xs))") is True

    def test_expt_negative_exponent(self):
        assert interp_expr("(expt 2 -1)") == 0.5

    def test_min_max_mixed(self):
        assert interp_expr("(min 3 1 2)") == 1
        assert interp_expr("(max 3 1 2)") == 3

    def test_string_to_number_failure_is_false(self):
        assert interp_expr('(string->number "nope")') is False

    def test_number_to_string(self):
        assert interp_expr("(number->string 42)") == "42"

    def test_length_of_improper_raises(self):
        with pytest.raises(PrimitiveError):
            interp_expr("(length (cons 1 2))")

    def test_deep_accessors(self):
        assert interp_expr("(caddr '(1 2 3))") == 3
        assert interp_expr("(cadddr '(1 2 3 4))") == 4
        assert interp_expr("(cddr '(1 2 3))") is not False

    def test_list_predicate(self):
        assert interp_expr("(list? '(1 2))") is True
        assert interp_expr("(list? (cons 1 2))") is False
        assert interp_expr("(list? '())") is True

    def test_atom_p(self):
        assert interp_expr("(atom? 1)") is True
        assert interp_expr("(atom? '(1))") is False


class TestWriteValue:
    def test_improper_pair_rendering(self):
        from repro.lang.prims import write_value
        from repro.runtime.values import Pair

        assert write_value(Pair(1, 2)) == "(1 . 2)"

    def test_procedure_rendering(self):
        from repro.lang.prims import write_value
        from repro.interp import Interpreter

        clo = Interpreter().eval(parse_expr("(lambda (x) x)"), None)
        assert write_value(clo) == "#<procedure>"

    def test_nested_list_rendering(self):
        from repro.lang.prims import write_value
        from repro.runtime.values import datum_to_value

        assert write_value(datum_to_value([1, [sym("a")], "s"])) == '(1 (a) "s")'


class TestCompileTimeEnvChain:
    def test_shadowing_finds_innermost(self):
        from repro.compiler.cenv import CompileTimeEnv, Local

        x = sym("x")
        env = CompileTimeEnv.for_procedure((x,))
        inner = env.bind_local(x, 5)
        assert inner.lookup(x) == Local(5)
        assert env.lookup(x) == Local(0)

    def test_deep_chains(self):
        from repro.compiler.cenv import CompileTimeEnv, Global, Local

        env = CompileTimeEnv()
        names = [sym(f"v{i}") for i in range(200)]
        for i, n in enumerate(names):
            env = env.bind_local(n, i)
        assert env.lookup(names[0]) == Local(0)
        assert env.lookup(names[199]) == Local(199)
        assert isinstance(env.lookup(sym("missing")), Global)

    def test_is_bound_locally_through_chain(self):
        from repro.compiler.cenv import CompileTimeEnv

        x, y = sym("x"), sym("y")
        env = CompileTimeEnv.for_procedure((x,)).bind_local(y, 1)
        assert env.is_bound_locally(x)
        assert env.is_bound_locally(y)
        assert not env.is_bound_locally(sym("z"))


class TestProgramContainer:
    def test_duplicate_goal_check(self):
        from repro.lang.ast import Def, Program
        from repro.lang import Const

        d = Def(sym("f"), (), Const(1))
        with pytest.raises(ValueError):
            Program((d,), sym("missing"))

    def test_goal_def(self):
        p = parse_program("(define (f x) x)")
        assert p.goal_def().name is sym("f")

    def test_walk_and_count(self):
        from repro.lang import count_nodes, walk

        e = parse_expr("(+ 1 (* 2 3))")
        assert count_nodes(e) == 5
        kinds = [type(n).__name__ for n in walk(e)]
        assert kinds[0] == "Prim"


class TestTemplateAndDisasm:
    def test_instruction_count_recursive(self):
        from repro.anf import anf_convert
        from repro.compiler.anf_compiler import compile_anf_expr

        t = compile_anf_expr(anf_convert(parse_expr("((lambda (x) x) 1)")))
        assert t.instruction_count(recursive=True) > t.instruction_count(
            recursive=False
        )

    def test_instruction_count_dedupes_shared_nested_templates(self):
        """A nested template referenced from several literal slots is
        counted once, not once per slot."""
        from repro.vm.instructions import Op
        from repro.vm.template import Template

        inner = Template(
            code=((Op.CONST, 0), (Op.RETURN,)),
            literals=(1,),
            arity=0,
            nlocals=0,
            name="inner",
        )
        outer = Template(
            code=(
                (Op.MAKE_CLOSURE, 0, 0),
                (Op.MAKE_CLOSURE, 1, 0),
                (Op.RETURN,),
            ),
            literals=(inner, inner),  # same template, two slots
            arity=0,
            nlocals=0,
            name="outer",
        )
        assert outer.instruction_count(recursive=False) == 3
        assert outer.instruction_count(recursive=True) == 3 + 2

    def test_instruction_count_merges_distinct_equal_templates(self):
        """Dedup is by *content digest*, not object identity: two
        structurally identical nested templates are one piece of code
        however many copies exist.  This keeps the fig7 before/after
        comparison fair — the optimizer's content-keyed memo shares
        identical subtemplates on the "after" side, and counting the
        unshared "before" side per object would inflate the apparent
        reduction."""
        from repro.vm.instructions import Op
        from repro.vm.template import Template

        def leaf(value=1):
            return Template(
                code=((Op.CONST, 0), (Op.RETURN,)),
                literals=(value,),
                arity=0,
                nlocals=0,
                name="leaf",
            )

        def outer(*leaves):
            return Template(
                code=tuple(
                    (Op.MAKE_CLOSURE, i, 0) for i in range(len(leaves))
                ) + ((Op.RETURN,),),
                literals=tuple(leaves),
                arity=0,
                nlocals=0,
                name="outer",
            )

        # Distinct objects, identical content: counted once.
        shared = outer(leaf(), leaf())
        assert shared.instruction_count(recursive=True) == 3 + 2
        # Same shape, different literal content: counted separately.
        distinct = outer(leaf(1), leaf(2))
        assert distinct.instruction_count(recursive=True) == 3 + 2 + 2
        # The two sides of a before/after comparison agree whether or
        # not equal subtemplates are object-shared.
        one = leaf()
        assert outer(one, one).instruction_count(
            recursive=True
        ) == shared.instruction_count(recursive=True)

    def test_content_digest_contract(self):
        """Equal content ⇔ equal digest; any content change flips it."""
        from repro.vm.instructions import Op
        from repro.vm.template import Template

        def make(value=1, name="t"):
            return Template(
                code=((Op.CONST, 0), (Op.RETURN,)),
                literals=(value,),
                arity=0,
                nlocals=0,
                name=name,
            )

        assert make().content_digest() == make().content_digest()
        assert make(1).content_digest() != make(2).content_digest()
        assert make(name="a").content_digest() != make(name="b").content_digest()

    def test_disassemble_shows_globals_and_prims(self):
        from repro.anf import anf_convert
        from repro.compiler.anf_compiler import compile_anf_expr
        from repro.vm import disassemble

        t = compile_anf_expr(anf_convert(parse_expr("(+ 1 (g 2))")))
        text = disassemble(t)
        assert "GLOBAL" in text
        assert "prim +" in text


class TestResidualOfVoidAndBooleans:
    def test_booleans_survive_specialization(self):
        from repro.rtcg import specialize_to_object_code

        src = "(define (f s d) (if (eq? s #t) (not d) d))"
        rp = specialize_to_object_code(src, "SD", [True], goal="f")
        assert rp.run([False]) is True

    def test_lifting_zero_vs_false_distinct(self):
        # The literal-interning regression: lifted 0 and #f must stay
        # distinct through the fused backend.
        from repro.rtcg import specialize_to_object_code

        src = "(define (f s d) (cons (car s) (cons (cadr s) d)))"
        from repro.runtime.values import datum_to_value, value_to_datum

        rp = specialize_to_object_code(
            src, "SD", [datum_to_value([0, False])], goal="f"
        )
        out = value_to_datum(rp.run([datum_to_value([])]))
        assert out == [0, False]
        assert out[0] is not False
        assert out[1] is False


class TestStockCompilerValueContexts:
    def test_conditional_in_operator_position(self):
        from repro.compiler import StockCompiler
        from repro.vm import Machine, VmClosure

        e = parse_expr("((if #t (lambda (x) (+ x 1)) (lambda (x) x)) 4)")
        t = StockCompiler().compile_procedure((), e, name="t")
        assert Machine().call(VmClosure(t, ()), []) == 5

    def test_deeply_nested_value_ifs(self):
        from repro.compiler import StockCompiler
        from repro.vm import Machine, VmClosure

        src = "(+ (if (< 1 2) (if (< 2 3) 1 2) 3) (if #f 10 (if #t 20 30)))"
        t = StockCompiler().compile_procedure((), parse_expr(src), name="t")
        assert Machine().call(VmClosure(t, ()), []) == 21


class TestInterpreterMisc:
    def test_env_lookup_through_parents(self):
        from repro.interp import Env

        x, y = sym("x"), sym("y")
        parent = Env({x: 1}, None)
        child = Env({y: 2}, parent)
        assert child.lookup(x) == 1
        assert child.lookup(y) == 2
        with pytest.raises(SchemeError):
            child.lookup(sym("z"))

    def test_env_child(self):
        from repro.interp import Env

        x = sym("x")
        env = Env({x: 1}, None).child({x: 2})
        assert env.lookup(x) == 2

    def test_interpreter_call_by_string_name(self):
        from repro.interp import Interpreter

        interp = Interpreter(parse_program("(define (f x) (* x 3))"))
        assert interp.call("f", [4]) == 12

    def test_undefined_function_call(self):
        from repro.interp import Interpreter

        with pytest.raises(SchemeError):
            Interpreter(parse_program("(define (f) 1)")).call("g", [])
