"""The profile-guided superinstruction pass and its translation validation.

Covers plan selection (profiled and static), the fuse/lower round trip
on the block graph, the validation failure modes, and the fused
machines' differential agreement with the base production loop.
"""

import pytest

from repro.lang.prims import PRIMITIVES
from repro.sexp import sym
from repro.vm import (
    Lit,
    Machine,
    Op,
    Template,
    VMProfile,
    VmClosure,
    assemble,
    attach_label,
    call_profiled,
    instruction,
    instruction_using_label,
    make_label,
    sequentially,
)
from repro.vm.dispatch import make_plan
from repro.vm.superinst import (
    FusionValidationError,
    SuperMachine,
    fuse_machine,
    fuse_template,
    fusion_table,
    lower_template,
    plan_from_template,
    select_superinstructions,
    structurally_equal,
    validate_fusion,
)

PLUS = PRIMITIVES[sym("+")]
TIMES = PRIMITIVES[sym("*")]


def simple(*fragments, arity=0, nlocals=None, name="test"):
    frag = sequentially(*fragments, instruction(Op.RETURN))
    return assemble(
        frag, arity, nlocals if nlocals is not None else max(arity, 4), name
    )


def square_template():
    # (lambda (n) (* n n)) — a dense run of fusable opcodes.
    return simple(
        instruction(Op.LOCAL, 0),
        instruction(Op.PUSH),
        instruction(Op.LOCAL, 0),
        instruction(Op.PUSH),
        instruction(Op.PRIM, Lit(TIMES), 2),
        arity=1,
        name="square",
    )


def branchy_template():
    # if local0 then 1+2 else 3+4 — fusable runs on both branch arms.
    label = make_label()
    return simple(
        instruction(Op.LOCAL, 0),
        instruction_using_label(Op.JUMP_IF_FALSE, label),
        instruction(Op.CONST, Lit(1)),
        instruction(Op.PUSH),
        instruction(Op.CONST, Lit(2)),
        instruction(Op.PUSH),
        instruction(Op.PRIM, Lit(PLUS), 2),
        instruction(Op.RETURN),
        attach_label(label, instruction(Op.CONST, Lit(3))),
        instruction(Op.PUSH),
        instruction(Op.CONST, Lit(4)),
        instruction(Op.PUSH),
        instruction(Op.PRIM, Lit(PLUS), 2),
        arity=1,
        name="branchy",
    )


class TestSelection:
    def test_profiled_selection_is_deterministic_and_fusable_only(self):
        t = square_template()
        machine = Machine()
        profile = VMProfile()
        for n in (3, 4, 5):
            call_profiled(machine, VmClosure(t, ()), [n], profile)
        plan = select_superinstructions(profile)
        again = select_superinstructions(profile)
        assert plan.key() == again.key()
        assert plan  # the hot LOCAL/PUSH runs are candidates
        for sup in plan.fused:
            assert all(op not in (Op.CALL, Op.RETURN) for op in sup.ops)

    def test_min_count_filters_cold_pairs(self):
        # n + 2: every adjacent pair is distinct and executes exactly
        # once, so a min_count of 2 yields no candidates.
        t = simple(
            instruction(Op.LOCAL, 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(2)),
            instruction(Op.PUSH),
            instruction(Op.PRIM, Lit(PLUS), 2),
            arity=1,
        )
        machine = Machine()
        profile = VMProfile()
        assert call_profiled(machine, VmClosure(t, ()), [1], profile) == 3
        assert profile.pair_counts
        assert not select_superinstructions(profile, min_count=2)
        assert select_superinstructions(profile, min_count=1)

    def test_static_plan_covers_template_runs(self):
        plan = plan_from_template(square_template())
        assert plan
        names = {s.name for s in plan.fused}
        assert any("LOCAL+PUSH" in name for name in names)


class TestFuseAndLower:
    def test_roundtrip_restores_original(self):
        t = branchy_template()
        plan = plan_from_template(t)
        fused = fuse_template(t, plan)
        assert fused is not t
        assert len(fused.code) < len(t.code)
        lowered = lower_template(fused)
        assert structurally_equal(lowered, t)
        validate_fusion(t, fused)

    def test_branch_targets_remap(self):
        t = branchy_template()
        plan = plan_from_template(t)
        fused = fuse_template(t, plan)
        machine = Machine()
        sm = SuperMachine(plan=plan)
        for test_value in (True, False):
            base = machine.call(VmClosure(t, ()), [test_value])
            hot = sm.call(VmClosure(fused, ()), [test_value])
            assert base == hot

    def test_unmatched_template_returned_unchanged(self):
        t = simple(instruction(Op.CONST, Lit(42)))
        plan = make_plan([(Op.LOCAL, Op.PUSH)])
        assert fuse_template(t, plan) is t

    def test_nested_templates_fuse_recursively(self):
        inner = square_template()
        outer = simple(
            instruction(Op.MAKE_CLOSURE, Lit(inner), 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(6)),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 1),
            name="outer",
        )
        plan = plan_from_template(outer)
        fused = fuse_template(outer, plan)
        fused_inner = next(
            lit for lit in fused.literals if isinstance(lit, Template)
        )
        assert len(fused_inner.code) < len(inner.code)
        assert structurally_equal(lower_template(fused), outer)

    def test_refuses_to_fuse_fused_code(self):
        t = square_template()
        plan = plan_from_template(t)
        fused = fuse_template(t, plan)
        with pytest.raises(FusionValidationError, match="already-fused"):
            fuse_template(fused, plan)

    def test_stats_count_fusion_sites(self):
        t = branchy_template()
        plan = plan_from_template(t)
        sites: dict[str, int] = {}
        fuse_template(t, plan, sites)
        assert sum(sites.values()) > 0
        rows = fusion_table(plan, sites)
        assert {row["name"] for row in rows} == {s.name for s in plan.fused}
        assert sum(row["sites"] for row in rows) == sum(sites.values())


class TestValidation:
    def test_tampered_fusion_is_rejected(self):
        t = square_template()
        plan = plan_from_template(t)
        fused = fuse_template(t, plan)
        # Corrupt one fused operand: lowering no longer restores t.
        code = list(fused.code)
        for i, instr in enumerate(code):
            if not isinstance(instr[0], Op) and len(instr) > 1:
                code[i] = (instr[0], *instr[1:-1], 99)
                break
        tampered = Template(
            code=tuple(code), literals=fused.literals,
            arity=fused.arity, nlocals=fused.nlocals, name=fused.name,
        )
        with pytest.raises(FusionValidationError, match="restore"):
            validate_fusion(t, tampered)

    def test_structural_equality_is_type_strict(self):
        # 1 and True are == in Python but are different literals.
        a = simple(instruction(Op.CONST, Lit(1)))
        b = simple(instruction(Op.CONST, Lit(True)))
        assert not structurally_equal(a, b)
        assert structurally_equal(a, simple(instruction(Op.CONST, Lit(1))))


class TestFusedMachines:
    def test_fuse_machine_differential(self):
        t = square_template()
        machine = Machine()
        machine.define(sym("square"), VmClosure(t, ()))
        machine.define(sym("limit"), 99)
        plan = plan_from_template(t)
        sites: dict[str, int] = {}
        fused = fuse_machine(machine, plan, stats=sites)
        assert sum(sites.values()) > 0
        for n in range(1, 6):
            assert fused.call_named(sym("square"), [n]) == machine.call_named(
                sym("square"), [n]
            )
        # Non-closure globals are shared, not copied.
        assert fused.globals[sym("limit")] == 99

    def test_fused_counting_loop_retires_fewer_dispatches(self):
        t = square_template()
        plan = plan_from_template(t)
        fused = fuse_template(t, plan)
        base_profile = VMProfile()
        call_profiled(Machine(), VmClosure(t, ()), [7], base_profile)
        sm = SuperMachine(plan=plan)
        fused_profile = VMProfile()
        assert (
            call_profiled(sm, VmClosure(fused, ()), [7], fused_profile) == 49
        )
        assert (
            fused_profile.total_instructions < base_profile.total_instructions
        )

    def test_base_templates_run_unchanged_on_super_machine(self):
        t = square_template()
        sm = SuperMachine(plan=plan_from_template(t))
        assert sm.call(VmClosure(t, ()), [9]) == 81
