"""Tests for the dataflow bytecode optimizer (:mod:`repro.vm.opt`).

Four pillars:

* **idempotence** — a second optimization pass is a no-op (property
  test over random programs);
* **determinism** — same input, same output, memo or no memo;
* **semantics preservation** — differential execution of the
  optimized/unoptimized twins agrees on random programs and on the
  fig6/fig7 residual corpus, through both dispatch loops (the plain
  machine and the profiled loop);
* **translation validation** — a deliberately broken pass is caught by
  the output re-verification, not silently shipped.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.compiler.program import compile_program
from repro.lang.parser import parse_program
from repro.rtcg import make_generating_extension
from repro.runtime.values import datum_to_value, scheme_equal
from repro.sexp.datum import sym
from repro.vm import opt
from repro.vm.instructions import Op
from repro.vm.profile import VMProfile, call_named_profiled
from repro.vm.template import Template
from repro.workloads import (
    LAZY_SIGNATURE,
    MIXWELL_SIGNATURE,
    lazy_interpreter,
    lazy_primes_program,
    mixwell_interpreter,
    mixwell_tm_program,
)
from tests.strategies import arith_exprs, higher_order_exprs, list_exprs


def _main_template(source: str) -> Template:
    program = parse_program(source)
    compiled = compile_program(program, compiler="auto", optimize=False)
    return compiled.templates[sym("main")]


def _twins(expr: str):
    """Unoptimized/optimized compilations of ``(define (main) expr)``."""
    program = parse_program(f"(define (main) {expr})")
    base = compile_program(program, compiler="auto", optimize=False)
    optd = compile_program(program, compiler="auto", optimize=True)
    return base, optd


# -- idempotence and determinism ----------------------------------------------


class TestIdempotence:
    @given(expr=arith_exprs())
    @settings(max_examples=30, deadline=None)
    def test_arith(self, expr):
        t = _main_template(f"(define (main) {expr})")
        once = opt.optimize(t).template
        twice = opt.optimize(once).template
        assert twice == once

    @given(expr=higher_order_exprs())
    @settings(max_examples=30, deadline=None)
    def test_higher_order(self, expr):
        t = _main_template(f"(define (main) {expr})")
        once = opt.optimize(t).template
        twice = opt.optimize(once).template
        assert twice == once

    @given(expr=list_exprs())
    @settings(max_examples=30, deadline=None)
    def test_lists(self, expr):
        t = _main_template(f"(define (main) {expr})")
        once = opt.optimize(t).template
        twice = opt.optimize(once).template
        assert twice == once

    def test_second_pass_reports_no_rewrites(self):
        t = _main_template(
            "(define (main) (let ((x (+ 1 2))) (let ((y x)) (* y y))))"
        )
        once = opt.optimize(t).template
        again = opt.optimize(once)
        assert not again.passes, again.passes
        assert again.template == once


class TestDeterminism:
    def test_same_input_same_output_without_memo(self):
        t = _main_template("(define (main) (let ((x 3)) (+ x (* x x))))")
        opt.clear_memo()
        first = opt.optimize(t)
        opt.clear_memo()
        second = opt.optimize(t)
        assert first.template == second.template
        assert first.passes == second.passes

    def test_memo_returns_cached_result(self):
        t = _main_template("(define (main) (+ 1 2))")
        opt.clear_memo()
        first = opt.optimize(t)
        second = opt.optimize(t)
        assert second is first

    def test_memo_discriminates_literal_kinds(self):
        # ``1`` and ``#t`` (and ``1.0``) write the same under some
        # naive keys; the content key must keep them apart.
        ints = Template(
            code=((Op.CONST, 0), (Op.RETURN,)), literals=(1,),
            arity=0, nlocals=0, name="k-int",
        )
        bools = Template(
            code=((Op.CONST, 0), (Op.RETURN,)), literals=(True,),
            arity=0, nlocals=0, name="k-bool",
        )
        floats = Template(
            code=((Op.CONST, 0), (Op.RETURN,)), literals=(1.0,),
            arity=0, nlocals=0, name="k-float",
        )
        opt.clear_memo()
        assert opt.optimize(ints).template.literals == (1,)
        assert opt.optimize(bools).template.literals == (True,)
        out = opt.optimize(floats).template.literals[0]
        assert isinstance(out, float)


# -- semantics preservation ---------------------------------------------------


class TestDifferentialExecution:
    @given(expr=arith_exprs())
    @settings(max_examples=30, deadline=None)
    def test_random_arith_agrees_on_both_loops(self, expr):
        base, optd = _twins(expr)
        assert scheme_equal(base.run([]), optd.run([]))
        profile = VMProfile()
        assert scheme_equal(
            call_named_profiled(base.machine(), base.goal, [], profile),
            call_named_profiled(optd.machine(), optd.goal, [], profile),
        )

    @given(expr=list_exprs())
    @settings(max_examples=30, deadline=None)
    def test_random_lists_agree(self, expr):
        base, optd = _twins(expr)
        assert scheme_equal(base.run([]), optd.run([]))

    @given(expr=higher_order_exprs())
    @settings(max_examples=30, deadline=None)
    def test_random_higher_order_agrees(self, expr):
        base, optd = _twins(expr)
        assert scheme_equal(base.run([]), optd.run([]))

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_residual_corpus_agrees_on_both_loops(self, workload):
        interp, sig, static, args = {
            "mixwell": (
                mixwell_interpreter(), MIXWELL_SIGNATURE,
                mixwell_tm_program(), [datum_to_value([1, 0, 1])],
            ),
            "lazy": (
                lazy_interpreter(), LAZY_SIGNATURE,
                lazy_primes_program(), [3],
            ),
        }[workload]
        gen = make_generating_extension(interp, sig)
        base = gen.to_object_code([static], optimize=False)
        optd = gen.to_object_code([static], optimize=True)
        assert scheme_equal(base.run(list(args)), optd.run(list(args)))
        assert scheme_equal(
            base.run_profiled(list(args), VMProfile()),
            optd.run_profiled(list(args), VMProfile()),
        )

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_residual_corpus_shrinks(self, workload):
        interp, sig, static = {
            "mixwell": (
                mixwell_interpreter(), MIXWELL_SIGNATURE, mixwell_tm_program()
            ),
            "lazy": (lazy_interpreter(), LAZY_SIGNATURE, lazy_primes_program()),
        }[workload]
        gen = make_generating_extension(interp, sig)
        base = gen.to_object_code([static], optimize=False)
        optd = gen.to_object_code([static], optimize=True)

        def total(rp):
            from repro.vm.machine import VmClosure

            return sum(
                value.template.instruction_count()
                for value in rp.machine.globals.values()
                if isinstance(value, VmClosure)
            )

        assert total(optd) < total(base)


# -- structure ----------------------------------------------------------------


class TestRecursionAndSkips:
    def test_nested_closure_templates_are_optimized(self):
        inner = Template(
            code=(
                (Op.CONST, 0),
                (Op.SETLOC, 0),   # dead store: nothing reads slot 0
                (Op.CONST, 0),
                (Op.RETURN,),
            ),
            literals=(42,), arity=0, nlocals=1, name="inner",
        )
        outer = Template(
            code=((Op.MAKE_CLOSURE, 0, 0), (Op.RETURN,)),
            literals=(inner,), arity=0, nlocals=0, name="outer",
        )
        result = opt.optimize(outer)
        optimized_inner = result.template.literals[0]
        assert isinstance(optimized_inner, Template)
        assert (
            optimized_inner.instruction_count()
            < inner.instruction_count()
        )

    def test_unverifiable_input_is_returned_unchanged(self):
        bad = Template(
            code=((Op.LOCAL, 7), (Op.RETURN,)),  # out-of-range slot
            literals=(), arity=0, nlocals=1, name="bad",
        )
        result = opt.optimize(bad)
        assert result.skipped
        assert result.template is bad
        assert result.passes == {}


class TestTranslationValidation:
    def test_broken_pass_is_rejected(self, monkeypatch):
        # The checker, not the passes, is trusted: a pass that corrupts
        # stack discipline must be caught by the output re-verification.
        # clear_memo first — a stale memoized result would mask the
        # monkeypatch entirely.
        opt.clear_memo()
        t = _main_template("(define (main) (car (cons 1 2)))")

        def broken_rounds(fn):
            for instrs in fn.blocks.values():
                instrs[:] = [i for i in instrs if i[0] is not Op.PUSH]
            fn.stats["broken"] += 1

        monkeypatch.setattr(opt, "_optimize_rounds", broken_rounds)
        with pytest.raises(opt.TranslationValidationError):
            opt.optimize(t)
        opt.clear_memo()

    def test_validation_failure_is_not_memoized(self, monkeypatch):
        opt.clear_memo()
        t = _main_template("(define (main) (car (cons 1 2)))")

        def broken_rounds(fn):
            for instrs in fn.blocks.values():
                instrs[:] = [i for i in instrs if i[0] is not Op.PUSH]
            fn.stats["broken"] += 1

        monkeypatch.setattr(opt, "_optimize_rounds", broken_rounds)
        with pytest.raises(opt.TranslationValidationError):
            opt.optimize(t)
        monkeypatch.undo()
        result = opt.optimize(t)  # healthy pipeline: must succeed now
        assert not result.skipped
        assert scheme_equal(
            compile_program(
                parse_program("(define (main) (car (cons 1 2)))"),
                compiler="auto", optimize=False,
            ).run([]),
            1,
        )
        opt.clear_memo()
