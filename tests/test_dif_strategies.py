"""Tests for the dynamic-conditional strategies.

Fig. 3's rule for ``if^D`` passes the continuation to *both* branches; in
value position that duplicates the residual continuation, exponentially
for chains of conditionals.  The ``join`` strategy binds the continuation
once as a residual join-point lambda.  Both strategies must agree
semantically; only their residual sizes differ.
"""

import pytest

from repro.anf import is_anf_program
from repro.compiler import ObjectCodeBackend
from repro.lang import count_nodes, parse_program
from repro.pe import SourceBackend, Specializer, analyze
from repro.runtime.values import scheme_equal


def make_chain(n: int) -> str:
    """A chain of n value-position dynamic conditionals.

    Each (step k d) contributes a dynamic conditional whose value feeds
    the next addition — the worst case for continuation duplication.
    """
    body = "0"
    for i in range(n):
        body = f"(+ (if (zero? (remainder d {i + 2})) 1 2) {body})"
    return f"(define (chain d) {body})"


def specialize_with(src, signature, static_args, strategy, goal=None):
    program = parse_program(src, goal=goal)
    res = analyze(program, signature)
    return Specializer(
        res.annotated, SourceBackend(), dif_strategy=strategy
    ).run(static_args)


class TestSemanticAgreement:
    CASES = [
        (make_chain(3), "D", [], [6]),
        (make_chain(3), "D", [], [35]),
        (
            "(define (f s d) (* s (+ (if (zero? d) 10 20) 1)))",
            "SD",
            [7],
            [0],
        ),
        (
            "(define (g d) (+ (if (zero? d) (if (zero? d) 1 2) 3) 100))",
            "D",
            [],
            [0],
        ),
    ]

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_same_results(self, case):
        src, sig, static, dyn = self.CASES[case]
        rp_dup = specialize_with(src, sig, static, "duplicate")
        rp_join = specialize_with(src, sig, static, "join")
        assert scheme_equal(rp_dup.run(dyn), rp_join.run(dyn))

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_join_residual_is_anf(self, case):
        src, sig, static, dyn = self.CASES[case]
        rp = specialize_with(src, sig, static, "join")
        assert is_anf_program(rp.program)


class TestSizeBehaviour:
    def _sizes(self, n, strategy):
        rp = specialize_with(make_chain(n), "D", [], strategy)
        return sum(count_nodes(d.body) for d in rp.program.defs)

    def test_duplication_grows_exponentially(self):
        s4 = self._sizes(4, "duplicate")
        s8 = self._sizes(8, "duplicate")
        # Each added conditional roughly doubles the duplicated tail.
        assert s8 > 8 * s4

    def test_join_grows_linearly(self):
        s4 = self._sizes(4, "join")
        s8 = self._sizes(8, "join")
        assert s8 < 3 * s4

    def test_join_much_smaller_on_deep_chains(self):
        dup = self._sizes(8, "duplicate")
        join = self._sizes(8, "join")
        assert join * 5 < dup

    def test_tail_conditionals_unaffected(self):
        # In tail position no duplication happens, so both strategies
        # produce the same residual program.
        src = "(define (f d) (if (zero? d) 'a 'b))"
        a = specialize_with(src, "D", [], "duplicate")
        b = specialize_with(src, "D", [], "join")

        # Modulo fresh names: compare shapes via node counts.
        assert sum(count_nodes(d.body) for d in a.program.defs) == sum(
            count_nodes(d.body) for d in b.program.defs
        )


class TestJoinWithObjectBackend:
    def test_fused_backend_supports_joins(self):
        program = parse_program(make_chain(5), goal="chain")
        res = analyze(program, "D")
        rp = Specializer(
            res.annotated, ObjectCodeBackend(), dif_strategy="join"
        ).run([])
        baseline = Specializer(res.annotated, SourceBackend()).run([])
        for d in (0, 6, 30, 209):
            assert rp.run([d]) == baseline.run([d])

    def test_rtcg_api_exposes_strategy(self):
        from repro.rtcg import make_generating_extension

        gen = make_generating_extension(make_chain(4), "D", goal="chain")
        rp = gen.to_object_code([], dif_strategy="join")
        rp2 = gen.to_source([], dif_strategy="join")
        assert rp.run([12]) == rp2.run([12])

    def test_bad_strategy_rejected(self):
        program = parse_program(make_chain(1), goal="chain")
        res = analyze(program, "D")
        with pytest.raises(ValueError):
            Specializer(res.annotated, dif_strategy="nope")
