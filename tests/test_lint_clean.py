"""The codebase lints clean.

When ``ruff`` is on PATH (configured in ``pyproject.toml``), run it over
``src``, ``tests`` and ``benchmarks``.  The container this repo grows in
does not ship ruff, so a reduced AST-based fallback keeps the invariant
enforced everywhere: every file parses, and no module imports a name it
never uses.
"""

from __future__ import annotations

import ast
import re
import shutil
import subprocess
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
TARGETS = ("src", "tests", "benchmarks")


def _python_files():
    for target in TARGETS:
        yield from sorted((ROOT / target).rglob("*.py"))


@pytest.mark.skipif(
    shutil.which("ruff") is None, reason="ruff not installed here"
)
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", *TARGETS],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_every_file_parses():
    for path in _python_files():
        ast.parse(path.read_text(), filename=str(path))


def _unused_imports(path: Path) -> list[str]:
    """F401-lite: imported names that occur nowhere else in the file.

    ``__init__.py`` files are skipped (their imports are re-exports), as
    are underscore-prefixed aliases.  A name "occurs" if it appears
    anywhere in the source text — comments and docstrings included — so
    this only flags imports that are definitely dead.
    """
    if path.name == "__init__.py":
        return []
    text = path.read_text()
    findings = []
    for node in ast.walk(ast.parse(text)):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            name = alias.asname or alias.name.split(".")[0]
            if name.startswith("_"):
                continue
            if len(re.findall(rf"\b{re.escape(name)}\b", text)) <= 1:
                findings.append(
                    f"{path.relative_to(ROOT)}:{node.lineno}:"
                    f" unused import {name}"
                )
    return findings


def test_no_unused_imports():
    findings = [f for path in _python_files() for f in _unused_imports(path)]
    assert findings == [], "\n".join(findings)
