"""The declarative instruction table and its generated dispatch loops.

The production loop in :mod:`repro.vm.machine` and the counting twin in
:mod:`repro.vm.profile` are both *renderings* of one table
(:mod:`repro.vm.dispatch`); the tests here pin the table's shape, the
congruence gate (checked-in loops == freshly rendered loops), and the
run-time ``build_loop`` path the superinstruction machinery uses.
"""

import subprocess
import sys

import pytest

from repro.vm.dispatch import (
    FUSABLE_OPS,
    FUSED_BASE,
    ORDER,
    TABLE,
    build_loop,
    check_drift,
    counting_loop_source,
    fused_for_opcode,
    make_plan,
    opcode_name,
    operand_count,
    production_loop_source,
    superinstruction,
)
from repro.vm.instructions import (
    BRANCH_OPS,
    LITERAL_COUNT_OPS,
    LITERAL_OPERAND_OPS,
    Op,
)


class TestTable:
    def test_every_opcode_has_exactly_one_spec(self):
        assert set(TABLE) == set(Op)
        assert len(ORDER) == len(Op)

    def test_operand_counts_match_instruction_classification(self):
        # The table must agree with instructions.py about encoding.
        for op in Op:
            n = operand_count(op)
            if op in LITERAL_COUNT_OPS:
                assert n == 2
            elif op in LITERAL_OPERAND_OPS or op in BRANCH_OPS:
                assert n == 1
            elif op in (Op.RETURN,):
                assert n == 0

    def test_fusable_ops_exclude_control_flow(self):
        for op in FUSABLE_OPS:
            assert op not in BRANCH_OPS
            assert op not in (Op.CALL, Op.TAIL_CALL, Op.RETURN)

    def test_operand_placeholders_stay_in_range(self):
        # A body may only reference operand slots its spec declares.
        for op, spec in TABLE.items():
            for slot in range(spec.operands, 4):
                assert "{a%d}" % slot not in spec.body, op


class TestDriftGate:
    def test_checked_in_loops_match_the_table(self):
        # The repo invariant the CI gate enforces: regenerating both
        # loops from the table is a no-op.
        assert check_drift() == []

    def test_cli_check_passes(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.vm.dispatch", "--check"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_print_emits_both_loops(self):
        for mode, marker in (
            ("production", "def _run("),
            ("counting", "def _run_counting("),
        ):
            proc = subprocess.run(
                [sys.executable, "-m", "repro.vm.dispatch", "--print", mode],
                capture_output=True, text=True,
            )
            assert proc.returncode == 0, proc.stderr
            assert marker in proc.stdout

    def test_counting_loop_is_production_plus_accounting(self):
        prod = production_loop_source()
        count = counting_loop_source()
        assert "profile" in count and "profile" not in prod
        # Both render every opcode arm.
        for op in Op:
            assert f"Op.{op.name}" in prod
            assert f"Op.{op.name}" in count


class TestSuperinstructionRegistry:
    def test_interned_by_sequence(self):
        a = superinstruction((Op.PUSH, Op.PRIM))
        b = superinstruction((Op.PUSH, Op.PRIM))
        assert a is b
        assert a.opcode >= FUSED_BASE
        assert fused_for_opcode(a.opcode) is a
        assert a.name == "PUSH+PRIM"
        assert a.dispatches_saved == 1

    def test_rejects_non_fusable_and_bad_lengths(self):
        with pytest.raises(ValueError):
            superinstruction((Op.PUSH,))
        with pytest.raises(ValueError):
            superinstruction((Op.PUSH, Op.RETURN))

    def test_opcode_name_covers_base_and_fused(self):
        s = superinstruction((Op.LOCAL, Op.PUSH))
        assert opcode_name(Op.CONST) == "CONST"
        assert opcode_name(s.opcode) == "LOCAL+PUSH"

    def test_plan_ordering_is_deterministic(self):
        plan = make_plan([
            (Op.PUSH, Op.PRIM),
            (Op.LOCAL, Op.PUSH, Op.PRIM),
            (Op.CONST, Op.PUSH),
        ])
        assert bool(plan)
        lengths = [len(s.ops) for s in plan.by_length_desc()]
        assert lengths == sorted(lengths, reverse=True)
        # Plans are order-preserving; the same selection in another
        # order carries the same superinstructions.
        other = make_plan([
            (Op.CONST, Op.PUSH),
            (Op.LOCAL, Op.PUSH, Op.PRIM),
            (Op.PUSH, Op.PRIM),
        ])
        assert set(plan.key()) == set(other.key())
        assert plan.by_length_desc() == other.by_length_desc()


class TestBuildLoop:
    def test_cached_per_plan_and_mode(self):
        plan = make_plan([(Op.CONST, Op.PUSH)])
        assert build_loop(plan, counting=False) is build_loop(
            plan, counting=False
        )
        assert build_loop(plan, counting=False) is not build_loop(
            plan, counting=True
        )

    def test_fused_arms_render_before_base_arms(self):
        plan = make_plan([(Op.CONST, Op.PUSH)])
        src = production_loop_source(plan)
        fused = superinstruction((Op.CONST, Op.PUSH))
        assert f"op == {fused.opcode}" in src
        assert src.index(f"op == {fused.opcode}") < src.index("Op.CONST")

    def test_empty_plan_matches_checked_in_loop(self):
        from repro.vm.machine import Machine

        loop = build_loop(None, counting=False)
        # Same rendering, same behavior: bind to a plain machine and run.
        from repro.lang.prims import PRIMITIVES
        from repro.sexp import sym
        from repro.vm import Lit, assemble, instruction, sequentially

        t = assemble(
            sequentially(
                instruction(Op.CONST, Lit(20)),
                instruction(Op.PUSH),
                instruction(Op.CONST, Lit(22)),
                instruction(Op.PUSH),
                instruction(Op.PRIM, Lit(PRIMITIVES[sym("+")]), 2),
                instruction(Op.RETURN),
            ),
            0, 0, "t",
        )
        machine = Machine()
        bound = loop.__get__(machine)
        assert bound(t, [], ()) == 42
