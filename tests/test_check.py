"""Tests for the congruence linter (:mod:`repro.pe.check`).

The BTA's output on every example and workload program must lint clean;
hand-corrupted annotations must raise :class:`AnnotationViolation` naming
the offending expression path.
"""

from __future__ import annotations

import pytest

from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    If,
    Lam,
    Lift,
    MemoCall,
    Prim,
    Var,
)
from repro.pe.annprog import AnnDef, BindingTime
from repro.pe.bta import analyze
from repro.pe.check import (
    AnnotationViolation,
    CongruenceKind,
    check_annotated,
    check_bta,
    verify_annotated,
)
from repro.lang.parser import parse_program
from repro.sexp.datum import sym

from tests.strategies import annotated_program as _program

S = BindingTime.STATIC
D = BindingTime.DYNAMIC


# -- BTA output is congruent on every example and workload --------------------


def _assert_congruent(program, signature, **kwargs):
    result = analyze(program, signature, **kwargs)
    violations = check_bta(result)
    assert violations == [], "\n".join(str(v) for v in violations)


class TestBTAOutputIsCongruent:
    def test_power(self):
        from examples.quickstart import POWER

        _assert_congruent(parse_program(POWER, goal="power"), "DS")

    def test_matcher(self):
        from examples.rtcg_matcher import MATCHER

        _assert_congruent(parse_program(MATCHER, goal="match"), "SD")

    def test_incremental_engine(self):
        from examples.incremental_rtcg import ENGINE

        _assert_congruent(parse_program(ENGINE, goal="matches?"), "SD")

    def test_mixwell_interpreter(self):
        from repro.workloads import MIXWELL_SIGNATURE, mixwell_interpreter

        _assert_congruent(mixwell_interpreter(), MIXWELL_SIGNATURE)

    def test_lazy_interpreter(self):
        from repro.workloads import LAZY_SIGNATURE, lazy_interpreter

        _assert_congruent(lazy_interpreter(), LAZY_SIGNATURE)

    def test_all_signature_splits_of_power(self):
        src = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"
        for signature in ("SS", "SD", "DS", "DD"):
            _assert_congruent(parse_program(src, goal="power"), signature)


# -- corrupted annotations are rejected ---------------------------------------


def _violation_kinds(annotated):
    return [(v.kind, v.path) for v in check_annotated(annotated)]


class TestCorruptAnnotationsRejected:
    def test_static_prim_with_dynamic_arg(self):
        # (zero? d) with d dynamic must be a DPrim.
        body = DIf(
            Prim(sym("zero?"), (Var(sym("d")),)),
            Lift(Const(1)),
            Lift(Const(2)),
        )
        kinds = _violation_kinds(_program(body))
        assert (
            CongruenceKind.STATIC_PRIM_DYNAMIC_ARG,
            "dif.test/prim.arg0",
        ) in kinds

    def test_static_if_on_dynamic_test(self):
        body = If(Var(sym("d")), Lift(Const(1)), Lift(Const(2)))
        kinds = _violation_kinds(_program(body))
        assert (
            CongruenceKind.STATIC_IF_DYNAMIC_TEST,
            "if.test",
        ) in kinds

    def test_lift_of_dynamic(self):
        body = Lift(Var(sym("d")))
        kinds = _violation_kinds(_program(body))
        assert (CongruenceKind.LIFT_OF_DYNAMIC, "lift") in kinds

    def test_lift_of_lambda(self):
        body = Lift(Lam((sym("x"),), Var(sym("x"))))
        kinds = _violation_kinds(_program(body))
        assert (CongruenceKind.LIFT_OF_LAMBDA, "lift") in kinds

    def test_unlifted_static_in_code_position(self):
        # A bare constant as a dynamic primitive argument lacks a lift.
        body = DPrim(sym("+"), (Var(sym("d")), Const(1)))
        kinds = _violation_kinds(_program(body))
        assert (CongruenceKind.UNLIFTED_STATIC, "dprim.arg1") in kinds

    def test_unlifted_static_residual_body(self):
        # A residual definition whose whole body is a bare constant.
        kinds = _violation_kinds(_program(Const(42)))
        assert (CongruenceKind.UNLIFTED_STATIC, "") in kinds

    def test_static_lambda_in_code_position(self):
        body = DApp(
            Lam((sym("x"),), Var(sym("x"))),
            (Var(sym("d")),),
        )
        kinds = _violation_kinds(_program(body))
        assert (CongruenceKind.STATIC_LAMBDA_IN_CODE, "dapp.fn") in kinds

    def test_static_app_of_dynamic_operator(self):
        body = App(Var(sym("d")), (Var(sym("s")),))
        kinds = _violation_kinds(_program(body))
        assert (
            CongruenceKind.STATIC_APP_DYNAMIC_OPERATOR,
            "app.fn",
        ) in kinds

    def test_memo_call_to_undefined_function(self):
        body = MemoCall(sym("ghost"), (Var(sym("d")),))
        kinds = _violation_kinds(_program(body))
        assert any(
            k is CongruenceKind.MEMO_UNKNOWN_FUNCTION and "ghost" in p
            for k, p in kinds
        )

    def test_memo_call_arity_mismatch(self):
        body = MemoCall(sym("main"), (Var(sym("d")),))
        kinds = _violation_kinds(_program(body))
        assert any(
            k is CongruenceKind.MEMO_ARITY_MISMATCH for k, p in kinds
        )

    def test_memo_call_dynamic_value_for_static_param(self):
        # The division is not closed: main's first parameter is static
        # but the recursive memoized call passes a dynamic value.
        body = MemoCall(sym("main"), (Var(sym("d")), Var(sym("d"))))
        kinds = _violation_kinds(_program(body))
        assert any(
            k is CongruenceKind.MEMO_STATIC_ARG_DYNAMIC and p.endswith("arg0")
            for k, p in kinds
        )

    def test_memo_call_to_unfolded_function(self):
        helper = AnnDef(
            name=sym("helper"),
            params=(sym("d"),),
            bts=(D,),
            body=Var(sym("d")),
            residual=False,
        )
        body = MemoCall(sym("helper"), (Var(sym("d")),))
        kinds = _violation_kinds(_program(body, extra=(helper,)))
        assert any(
            k is CongruenceKind.MEMO_TO_UNFOLDED for k, p in kinds
        )

    def test_dlam_body_is_code_position(self):
        body = DLam((sym("x"),), Const(5))
        kinds = _violation_kinds(_program(body))
        assert (CongruenceKind.UNLIFTED_STATIC, "dlam.body") in kinds

    def test_verify_annotated_raises_with_paths(self):
        body = DIf(Lift(Var(sym("d"))), Lift(Const(1)), Const(2))
        with pytest.raises(AnnotationViolation) as exc:
            verify_annotated(_program(body))
        message = str(exc.value)
        assert "lift-of-dynamic" in message
        assert "dif.test/lift" in message
        assert "dif.alt" in message
        assert all(
            v.def_name == sym("main") for v in exc.value.violations
        )

    def test_clean_annotation_passes(self):
        body = DPrim(sym("+"), (Var(sym("d")), Lift(Var(sym("s")))))
        assert check_annotated(_program(body)) == []
        verify_annotated(_program(body))  # must not raise


class TestGeneratingExtensionWiring:
    def test_generating_extension_checks_congruence(self):
        from repro.rtcg import GeneratingExtension

        # A well-annotated program constructs without complaint...
        GeneratingExtension(
            "(define (power x n)"
            " (if (zero? n) 1 (* x (power x (- n 1)))))",
            "DS",
            goal="power",
        )

    def test_check_can_be_disabled(self):
        from repro.rtcg import GeneratingExtension

        gen = GeneratingExtension(
            "(define (main s d) (+ s d))",
            "SD",
            goal="main",
            check_congruence=False,
        )
        assert gen.bta is not None
