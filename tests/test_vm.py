"""Opcode-level and assembler-level VM tests."""

import pytest

from repro.lang.prims import PRIMITIVES
from repro.sexp import sym
from repro.vm import (
    Machine,
    Op,
    VMError,
    VmClosure,
    assemble,
    attach_label,
    disassemble,
    instruction,
    instruction_using_label,
    make_label,
    sequentially,
    Lit,
)
from repro.vm.assembler import AssemblyError


def run_template(template, args=(), globals_=None):
    machine = Machine(globals_)
    return machine.call(VmClosure(template, ()), list(args))


def simple(*fragments, arity=0, nlocals=None, name="test"):
    frag = sequentially(*fragments, instruction(Op.RETURN))
    return assemble(frag, arity, nlocals if nlocals is not None else max(arity, 4), name)


class TestBasicOps:
    def test_const(self):
        t = simple(instruction(Op.CONST, Lit(42)))
        assert run_template(t) == 42

    def test_local(self):
        t = simple(instruction(Op.LOCAL, 1), arity=2)
        assert run_template(t, [10, 20]) == 20

    def test_setloc(self):
        t = simple(
            instruction(Op.CONST, Lit(7)),
            instruction(Op.SETLOC, 1),
            instruction(Op.LOCAL, 1),
            arity=1,
        )
        assert run_template(t, [0]) == 7

    def test_global(self):
        t = simple(instruction(Op.GLOBAL, Lit(sym("x"))))
        assert run_template(t, [], {sym("x"): 99}) == 99

    def test_undefined_global(self):
        t = simple(instruction(Op.GLOBAL, Lit(sym("missing"))))
        with pytest.raises(VMError):
            run_template(t)

    def test_prim(self):
        t = simple(
            instruction(Op.CONST, Lit(3)),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(4)),
            instruction(Op.PUSH),
            instruction(Op.PRIM, Lit(PRIMITIVES[sym("+")]), 2),
        )
        assert run_template(t) == 7

    def test_jump(self):
        label = make_label()
        t = simple(
            instruction(Op.CONST, Lit(1)),
            instruction_using_label(Op.JUMP, label),
            instruction(Op.CONST, Lit(2)),
            attach_label(label, instruction(Op.CONST, Lit(3))),
        )
        assert run_template(t) == 3

    def test_jump_if_false_taken(self):
        label = make_label()
        t = simple(
            instruction(Op.CONST, Lit(False)),
            instruction_using_label(Op.JUMP_IF_FALSE, label),
            instruction(Op.CONST, Lit(1)),
            attach_label(label, instruction(Op.CONST, Lit(2))),
        )
        assert run_template(t) == 2

    def test_jump_if_false_not_taken_on_truthy(self):
        # Only #f is false: 0 and nil are truthy.
        label = make_label()
        t = simple(
            instruction(Op.CONST, Lit(0)),
            instruction_using_label(Op.JUMP_IF_FALSE, label),
            instruction(Op.CONST, Lit(1)),
            instruction(Op.RETURN),
            attach_label(label, instruction(Op.CONST, Lit(2))),
        )
        assert run_template(t) == 1


class TestClosuresAndCalls:
    def _add_one_template(self):
        return simple(
            instruction(Op.LOCAL, 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(1)),
            instruction(Op.PUSH),
            instruction(Op.PRIM, Lit(PRIMITIVES[sym("+")]), 2),
            arity=1,
            name="add1",
        )

    def test_make_closure_and_tail_call(self):
        inner = self._add_one_template()
        t = simple(
            instruction(Op.MAKE_CLOSURE, Lit(inner), 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(41)),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 1),
        )
        assert run_template(t) == 42

    def test_non_tail_call_returns_here(self):
        inner = self._add_one_template()
        t = simple(
            instruction(Op.MAKE_CLOSURE, Lit(inner), 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(10)),
            instruction(Op.PUSH),
            instruction(Op.CALL, 1),
            instruction(Op.SETLOC, 0),
            instruction(Op.LOCAL, 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(100)),
            instruction(Op.PUSH),
            instruction(Op.PRIM, Lit(PRIMITIVES[sym("+")]), 2),
            arity=1,
        )
        assert run_template(t, [0]) == 111

    def test_closed_variables(self):
        # inner: () -> closed[0]
        inner = simple(instruction(Op.CLOSED, 0), arity=0, name="get")
        t = simple(
            instruction(Op.CONST, Lit(55)),
            instruction(Op.PUSH),
            instruction(Op.MAKE_CLOSURE, Lit(inner), 1),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 0),
        )
        assert run_template(t) == 55

    def test_arity_check(self):
        inner = self._add_one_template()
        t = simple(
            instruction(Op.MAKE_CLOSURE, Lit(inner), 0),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 0),
        )
        with pytest.raises(VMError, match="expected 1 arguments"):
            run_template(t)

    def test_apply_non_procedure(self):
        t = simple(
            instruction(Op.CONST, Lit(5)),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 0),
        )
        with pytest.raises(VMError, match="non-procedure"):
            run_template(t)

    def test_prim_as_operator(self):
        t = simple(
            instruction(Op.CONST, Lit(PRIMITIVES[sym("car")])),
            instruction(Op.PUSH),
            instruction(Op.GLOBAL, Lit(sym("lst"))),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 1),
        )
        from repro.runtime.values import scheme_list

        assert run_template(t, [], {sym("lst"): scheme_list(1, 2)}) == 1

    def test_machine_call_named(self):
        inner = self._add_one_template()
        m = Machine({sym("f"): VmClosure(inner, ())})
        assert m.call_named(sym("f"), [4]) == 5

    def test_call_non_closure_value_via_machine(self):
        m = Machine()
        with pytest.raises(VMError):
            m.call(42, [])


class TestAssembler:
    def test_literal_sharing(self):
        t = simple(
            instruction(Op.CONST, Lit(42)),
            instruction(Op.CONST, Lit(42)),
        )
        assert t.literals.count(42) == 1

    def test_unresolved_label(self):
        label = make_label()
        frag = instruction_using_label(Op.JUMP, label)
        with pytest.raises(AssemblyError, match="unresolved"):
            assemble(frag, 0, 0)

    def test_double_attached_label(self):
        label = make_label()
        frag = sequentially(
            attach_label(label, instruction(Op.RETURN)),
            attach_label(label, instruction(Op.RETURN)),
        )
        with pytest.raises(AssemblyError, match="twice"):
            assemble(frag, 0, 0)

    def test_label_on_non_branch_rejected(self):
        label = make_label()
        frag = sequentially(
            instruction_using_label(Op.CONST, label),
            attach_label(label, instruction(Op.RETURN)),
        )
        with pytest.raises(AssemblyError):
            assemble(frag, 0, 0)

    def test_nlocals_less_than_arity_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(instruction(Op.RETURN), 2, 1)

    def test_trailing_label_rejected(self):
        label = make_label()
        frag = sequentially(
            instruction(Op.RETURN),
            attach_label(label, sequentially()),
        )
        with pytest.raises(ValueError):
            assemble(frag, 0, 0)

    def test_disassemble_smoke(self):
        inner = simple(instruction(Op.CLOSED, 0), arity=0, name="inner")
        t = simple(
            instruction(Op.CONST, Lit(1)),
            instruction(Op.PUSH),
            instruction(Op.MAKE_CLOSURE, Lit(inner), 1),
        )
        text = disassemble(t)
        assert "MAKE_CLOSURE" in text
        assert "inner" in text


class TestDeepRecursionOnVM:
    def test_tail_calls_run_in_constant_space(self):
        # loop(n): if n == 0 return 'done else loop(n-1)   [self via global]
        done = sym("done")
        label = make_label()
        frag = sequentially(
            instruction(Op.LOCAL, 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(0)),
            instruction(Op.PUSH),
            instruction(Op.PRIM, Lit(PRIMITIVES[sym("=")]), 2),
            instruction_using_label(Op.JUMP_IF_FALSE, label),
            instruction(Op.CONST, Lit(done)),
            instruction(Op.RETURN),
            attach_label(label, instruction(Op.GLOBAL, Lit(sym("loop")))),
            instruction(Op.PUSH),
            instruction(Op.LOCAL, 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(1)),
            instruction(Op.PUSH),
            instruction(Op.PRIM, Lit(PRIMITIVES[sym("-")]), 2),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 1),
        )
        t = assemble(frag, 1, 1, "loop")
        m = Machine()
        m.define(sym("loop"), VmClosure(t, ()))
        assert m.call_named(sym("loop"), [500000]) is done
