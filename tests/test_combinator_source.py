"""Tests for the printed combinator module (Act 3's generated file)."""

import pytest

from repro.compiler import annotated
from repro.compiler.annotated import DepthTracker, GenCenv
from repro.compiler.cenv import CompileTimeEnv
from repro.compiler.combinator_source import (
    COMPILATOR_TABLE,
    combinator_source,
    emit_combinator_module,
    load_combinator_module,
)
from repro.lang.prims import PRIMITIVES
from repro.sexp import sym
from repro.vm import Machine, VmClosure, assemble, disassemble


@pytest.fixture(scope="module")
def loaded():
    return load_combinator_module()


def _ctx(params=()):
    env = CompileTimeEnv.for_procedure(tuple(params))
    return GenCenv(env, DepthTracker(len(params))), len(params)


def _run(emit, params=(), args=()):
    cenv, depth = _ctx(params)
    fragment = emit(cenv, depth)
    template = assemble(fragment, len(params), cenv.tracker.max_depth, "t")
    return Machine().call(VmClosure(template, ()), list(args))


def _template_text(emit, params=()):
    cenv, depth = _ctx(params)
    fragment = emit(cenv, depth)
    template = assemble(fragment, len(params), cenv.tracker.max_depth, "t")
    return disassemble(template)


class TestGeneratedModule:
    def test_module_is_valid_python(self):
        source = emit_combinator_module()
        compile(source, "<combinators>", "exec")

    def test_all_combinators_present(self, loaded):
        for compilator, _, _ in COMPILATOR_TABLE:
            name = f"make_residual_{compilator.__name__[11:]}"
            assert name in loaded, name

    def test_source_contains_shared_label_binding(self):
        text = combinator_source(
            annotated.compilator_if, (), ("test", "then", "alt")
        )
        # The _let annotation appears as a local binding used twice.
        assert text.count("shared1") == 3  # definition + two uses

    def test_emitted_code_is_readable_shape(self):
        text = combinator_source(
            annotated.compilator_let, ("var",), ("rhs", "body")
        )
        assert "def make_residual_let(var, rhs, body):" in text
        assert "bind_local(cenv, var, depth)" in text


class TestLoadedAgainstDerived:
    """The printed-and-loaded combinators emit identical code to the
    directly derived (closure) combinators."""

    def test_const(self, loaded):
        a = _template_text(loaded["make_residual_const"](42))
        b = _template_text(annotated.make_residual_const(42))
        assert a == b

    def test_variable(self, loaded):
        x = sym("x")
        a = _template_text(loaded["make_residual_variable"](x), params=(x,))
        b = _template_text(annotated.make_residual_variable(x), params=(x,))
        assert a == b

    def test_if_prim_let_composition(self, loaded):
        def build(ns):
            spec = PRIMITIVES[sym("+")]
            t = sym("t")
            rhs = ns["make_residual_prim"](
                spec,
                (ns["make_residual_const"](1), ns["make_residual_const"](2)),
            )
            body = ns["make_residual_return"](ns["make_residual_variable"](t))
            inner = ns["make_residual_let"](t, rhs, body)
            return ns["make_residual_if"](
                ns["make_residual_const"](False),
                ns["make_residual_return"](ns["make_residual_const"](0)),
                inner,
            )

        derived_ns = {
            "make_residual_prim": annotated.make_residual_prim,
            "make_residual_const": annotated.make_residual_const,
            "make_residual_return": annotated.make_residual_return,
            "make_residual_variable": annotated.make_residual_variable,
            "make_residual_let": annotated.make_residual_let,
            "make_residual_if": annotated.make_residual_if,
        }
        assert _template_text(build(loaded)) == _template_text(
            build(derived_ns)
        )
        assert _run(build(loaded)) == 3

    def test_tail_call(self, loaded):
        f = sym("f")
        a = _template_text(
            loaded["make_residual_tail_call"](
                loaded["make_residual_variable"](f),
                (loaded["make_residual_const"](1),),
            )
        )
        b = _template_text(
            annotated.make_residual_tail_call(
                annotated.make_residual_variable(f),
                (annotated.make_residual_const(1),),
            )
        )
        assert a == b

    def test_lambda(self, loaded):
        x = sym("x")
        body = loaded["make_residual_return"](loaded["make_residual_const"](9))
        a = _template_text(loaded["make_residual_lambda"]((x,), (), body))
        body2 = annotated.make_residual_return(annotated.make_residual_const(9))
        b = _template_text(annotated.make_residual_lambda((x,), (), body2))
        assert a == b
