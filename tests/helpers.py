"""Shared test helpers: running programs on all execution paths."""

from __future__ import annotations

from typing import Any, Sequence

from repro.compiler import compile_program
from repro.interp import Interpreter, run_program
from repro.lang import parse_expr, parse_program
from repro.lang.ast import Program
from repro.runtime.values import value_to_datum


def interp_expr(source: str) -> Any:
    """Evaluate an expression with the reference interpreter.

    Runs assignment elimination when needed (``letrec``/``set!`` desugar
    into assignments).
    """
    from repro.lang import eliminate_assignments_expr, has_assignments

    expr = parse_expr(source)
    if has_assignments(expr):
        expr = eliminate_assignments_expr(expr)
    return Interpreter().eval(expr, None)


def interp_datum(source: str) -> Any:
    """Evaluate and convert the result to reader data (lists etc.)."""
    return value_to_datum(interp_expr(source))


def run_all_ways(program: Program, args: Sequence[Any]) -> list[Any]:
    """Run a program through the interpreter, ANF compiler, and stock compiler."""
    results = [run_program(program, list(args))]
    for mode in ("auto", "stock"):
        results.append(compile_program(program, compiler=mode).run(list(args)))
    return results


def assert_all_ways_equal(source: str, args: Sequence[Any], expected: Any) -> None:
    from repro.runtime.values import scheme_equal

    program = parse_program(source)
    for result in run_all_ways(program, args):
        assert scheme_equal(result, expected), (
            f"got {result!r}, expected {expected!r}"
        )
