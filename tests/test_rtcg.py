"""Tests for the top-level RTCG API and end-to-end properties."""

from hypothesis import given, settings, strategies as st

from repro.interp import run_program
from repro.lang import parse_program
from repro.rtcg import (
    GeneratingExtension,
    make_generating_extension,
    run_specialized,
    specialize_to_object_code,
    specialize_to_source,
)
from repro.runtime.values import scheme_equal
from tests.strategies import arith_exprs, higher_order_exprs

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


class TestAPI:
    def test_extension_from_source_text(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        assert gen.to_object_code([3]).run([2]) == 8

    def test_extension_from_parsed_program(self):
        program = parse_program(POWER, goal="power")
        gen = GeneratingExtension(program, "DS")
        assert gen.to_source([4]).run([2]) == 16

    def test_call_shorthand_is_object_code(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        rp = gen([6])
        assert rp.machine is not None
        assert rp.run([2]) == 64

    def test_one_shot_source(self):
        rp = specialize_to_source(POWER, "DS", [5], goal="power")
        assert rp.program is not None
        assert rp.run([3]) == 243

    def test_one_shot_object(self):
        rp = specialize_to_object_code(POWER, "DS", [5], goal="power")
        assert rp.machine is not None
        assert rp.run([3]) == 243

    def test_run_specialized(self):
        assert run_specialized(POWER, "DS", [10], [2], goal="power") == 1024

    def test_hints_are_forwarded(self):
        gen = make_generating_extension(
            POWER, "DS", goal="power", memo_hints=["power"]
        )
        rp = gen.to_source([4])
        # Memoized: one residual definition per exponent value.
        assert len(rp.program.defs) == 5

    def test_goal_params_reported(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        rp = gen.to_source([2])
        assert len(rp.goal_params) == 1


class TestResidualProgramContainer:
    def test_source_run_uses_interpreter(self):
        rp = specialize_to_source(POWER, "DS", [3], goal="power")
        assert rp.run([5]) == 125

    def test_stats_populated(self):
        rp = specialize_to_source(POWER, "SD", [2], goal="power")
        assert rp.stats["residual_defs"] >= 1
        assert rp.stats["memo_entries"] >= 1


def _wrap_goal(body_source: str, params: tuple[str, ...]) -> str:
    return f"(define (goal {' '.join(params)}) {body_source})"


class TestAllDynamicIsSemanticPreserving:
    """With every input dynamic, specialization must preserve semantics:
    the residual program is the original, staged."""

    @given(arith_exprs(depth=3, env=("a", "b")),
           st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_random_arith(self, body, a, b):
        src = _wrap_goal(body, ("a", "b"))
        program = parse_program(src, goal="goal")
        expected = run_program(program, [a, b])
        rp = specialize_to_object_code(src, "DD", [], goal="goal")
        assert rp.run([a, b]) == expected

    @given(higher_order_exprs(depth=3, env=("a",)), st.integers(-20, 20))
    @settings(max_examples=40, deadline=None)
    def test_random_higher_order(self, body, a):
        src = _wrap_goal(body, ("a",))
        program = parse_program(src, goal="goal")
        expected = run_program(program, [a])
        rp = specialize_to_object_code(src, "D", [], goal="goal")
        assert rp.run([a]) == expected

    @given(arith_exprs(depth=3, env=("a", "b")),
           st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_partially_static(self, body, a, b):
        # a static, b dynamic: must agree with full evaluation.
        src = _wrap_goal(body, ("a", "b"))
        program = parse_program(src, goal="goal")
        expected = run_program(program, [a, b])
        rp = specialize_to_object_code(src, "SD", [a], goal="goal")
        assert rp.run([b]) == expected

    @given(arith_exprs(depth=3, env=("a", "b")),
           st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_source_and_object_agree(self, body, a, b):
        src = _wrap_goal(body, ("a", "b"))
        gen = make_generating_extension(src, "SD", goal="goal")
        rp_src = gen.to_source([a])
        rp_obj = gen.to_object_code([a])
        assert scheme_equal(rp_src.run([b]), rp_obj.run([b]))


class TestTiering:
    """Interpret cold, promote hot: the superinstruction tier."""

    def test_threshold_crossing_promotes(self):
        gen = make_generating_extension(
            POWER, "DS", goal="power", tier_threshold=3
        )
        rp = gen.to_object_code([8])
        assert rp.tier is not None
        # Results are identical across the cold runs, the promoting run,
        # and the hot (fused) runs.
        assert [rp.run([2]) for _ in range(5)] == [256] * 5
        stats = gen.cache_stats()
        tiering = stats["tiering"]
        assert tiering["threshold"] == 3
        assert tiering["tracked"] == 1
        assert tiering["runs"] == 5
        assert tiering["promoted"] == 1
        assert tiering["promotions"] == 1
        assert tiering["failed"] == 0
        assert tiering["validation_failures"] == 0
        assert "tier_promote" in stats["stages"]

    def test_promoted_machine_shared_across_cache_views(self):
        gen = make_generating_extension(
            POWER, "DS", goal="power", tier_threshold=2
        )
        first = gen.to_object_code([6])
        assert [first.run([2]) for _ in range(3)] == [64] * 3
        assert gen.cache_stats()["tiering"]["promotions"] == 1
        # A second view of the same cached residual shares the shared
        # promotion state: it starts hot, without promoting again.
        second = gen.to_object_code([6])
        assert second.tier is not None
        assert second.run([2]) == 64
        tiering = gen.cache_stats()["tiering"]
        assert tiering["promotions"] == 1
        assert tiering["tracked"] == 1

    def test_tiering_off_by_default(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        rp = gen.to_object_code([4])
        assert rp.tier is None
        assert "tiering" not in gen.cache_stats()

    def test_threshold_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError, match="tier_threshold"):
            make_generating_extension(
                POWER, "DS", goal="power", tier_threshold=0
            )

    def test_source_residuals_are_not_tiered(self):
        gen = make_generating_extension(
            POWER, "DS", goal="power", tier_threshold=1
        )
        rp = gen.to_source([3])
        assert rp.tier is None
        assert rp.run([2]) == 8

    def test_empty_plan_latches_base_machine(self, monkeypatch):
        import repro.vm.superinst as superinst
        from repro.vm.dispatch import FusionPlan

        monkeypatch.setattr(
            superinst, "select_superinstructions",
            lambda profile, max_fused=8, min_count=2: FusionPlan(),
        )
        gen = make_generating_extension(
            POWER, "DS", goal="power", tier_threshold=2
        )
        rp = gen.to_object_code([5])
        # Promotion finds nothing to fuse; runs keep answering on the
        # base machine and the state latches failed (no retry storm).
        assert [rp.run([2]) for _ in range(4)] == [32] * 4
        tiering = gen.cache_stats()["tiering"]
        assert tiering["failed"] == 1
        assert tiering["promoted"] == 0
        assert tiering["promotions"] == 0
