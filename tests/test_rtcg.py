"""Tests for the top-level RTCG API and end-to-end properties."""

from hypothesis import given, settings, strategies as st

from repro.interp import run_program
from repro.lang import parse_program
from repro.rtcg import (
    GeneratingExtension,
    make_generating_extension,
    run_specialized,
    specialize_to_object_code,
    specialize_to_source,
)
from repro.runtime.values import scheme_equal
from tests.strategies import arith_exprs, higher_order_exprs

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


class TestAPI:
    def test_extension_from_source_text(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        assert gen.to_object_code([3]).run([2]) == 8

    def test_extension_from_parsed_program(self):
        program = parse_program(POWER, goal="power")
        gen = GeneratingExtension(program, "DS")
        assert gen.to_source([4]).run([2]) == 16

    def test_call_shorthand_is_object_code(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        rp = gen([6])
        assert rp.machine is not None
        assert rp.run([2]) == 64

    def test_one_shot_source(self):
        rp = specialize_to_source(POWER, "DS", [5], goal="power")
        assert rp.program is not None
        assert rp.run([3]) == 243

    def test_one_shot_object(self):
        rp = specialize_to_object_code(POWER, "DS", [5], goal="power")
        assert rp.machine is not None
        assert rp.run([3]) == 243

    def test_run_specialized(self):
        assert run_specialized(POWER, "DS", [10], [2], goal="power") == 1024

    def test_hints_are_forwarded(self):
        gen = make_generating_extension(
            POWER, "DS", goal="power", memo_hints=["power"]
        )
        rp = gen.to_source([4])
        # Memoized: one residual definition per exponent value.
        assert len(rp.program.defs) == 5

    def test_goal_params_reported(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        rp = gen.to_source([2])
        assert len(rp.goal_params) == 1


class TestResidualProgramContainer:
    def test_source_run_uses_interpreter(self):
        rp = specialize_to_source(POWER, "DS", [3], goal="power")
        assert rp.run([5]) == 125

    def test_stats_populated(self):
        rp = specialize_to_source(POWER, "SD", [2], goal="power")
        assert rp.stats["residual_defs"] >= 1
        assert rp.stats["memo_entries"] >= 1


def _wrap_goal(body_source: str, params: tuple[str, ...]) -> str:
    return f"(define (goal {' '.join(params)}) {body_source})"


class TestAllDynamicIsSemanticPreserving:
    """With every input dynamic, specialization must preserve semantics:
    the residual program is the original, staged."""

    @given(arith_exprs(depth=3, env=("a", "b")),
           st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_random_arith(self, body, a, b):
        src = _wrap_goal(body, ("a", "b"))
        program = parse_program(src, goal="goal")
        expected = run_program(program, [a, b])
        rp = specialize_to_object_code(src, "DD", [], goal="goal")
        assert rp.run([a, b]) == expected

    @given(higher_order_exprs(depth=3, env=("a",)), st.integers(-20, 20))
    @settings(max_examples=40, deadline=None)
    def test_random_higher_order(self, body, a):
        src = _wrap_goal(body, ("a",))
        program = parse_program(src, goal="goal")
        expected = run_program(program, [a])
        rp = specialize_to_object_code(src, "D", [], goal="goal")
        assert rp.run([a]) == expected

    @given(arith_exprs(depth=3, env=("a", "b")),
           st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_partially_static(self, body, a, b):
        # a static, b dynamic: must agree with full evaluation.
        src = _wrap_goal(body, ("a", "b"))
        program = parse_program(src, goal="goal")
        expected = run_program(program, [a, b])
        rp = specialize_to_object_code(src, "SD", [a], goal="goal")
        assert rp.run([b]) == expected

    @given(arith_exprs(depth=3, env=("a", "b")),
           st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_source_and_object_agree(self, body, a, b):
        src = _wrap_goal(body, ("a", "b"))
        gen = make_generating_extension(src, "SD", goal="goal")
        rp_src = gen.to_source([a])
        rp_obj = gen.to_object_code([a])
        assert scheme_equal(rp_src.run([b]), rp_obj.run([b]))
