"""Tests for the binary image codec (:mod:`repro.image.codec`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_program
from repro.image.codec import (
    CODEC_VERSION,
    MAGIC,
    CodecError,
    decode_residual,
    decode_template,
    encode_residual,
    encode_template,
    load_image,
    save_image,
)
from repro.lang import parse_program
from repro.rtcg import make_generating_extension
from repro.runtime.values import NIL, UNSPECIFIED, datum_to_value
from repro.sexp.datum import Char, sym
from repro.vm.disasm import disassemble
from repro.vm.instructions import Op
from repro.vm.template import Template
from tests.strategies import arith_exprs, data, higher_order_exprs, list_exprs

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


def _template_of(source: str) -> Template:
    program = parse_program(source)
    compiled = compile_program(program)
    return compiled.templates[program.goal]


class TestValueRoundTrip:
    """Literal values survive encode/decode exactly."""

    def _roundtrip_literal(self, value):
        t = Template(
            code=((Op.CONST, 0), (Op.RETURN,)),
            literals=(value,),
            arity=0,
            nlocals=0,
            name="lit",
        )
        return decode_template(encode_template(t)).literals[0]

    @pytest.mark.parametrize(
        "value",
        [
            0,
            -1,
            2**80,
            -(2**80),
            True,
            False,
            1.5,
            -0.0,
            "",
            "héllo",
            Char("a"),
            Char("\n"),
            NIL,
            UNSPECIFIED,
            sym("a-symbol"),
            datum_to_value([1, [2, "x"], sym("y")]),
        ],
    )
    def test_atoms_and_lists(self, value):
        from repro.runtime.values import scheme_equal

        out = self._roundtrip_literal(value)
        assert scheme_equal(out, value)
        # Type is preserved exactly: no bool/int or int/float merging.
        assert type(out) is type(value)

    def test_symbols_decode_interned(self):
        out = self._roundtrip_literal(sym("power"))
        assert out is sym("power")

    def test_improper_list(self):
        from repro.runtime.values import Pair

        value = Pair(1, Pair(2, 3))
        out = self._roundtrip_literal(value)
        assert out.car == 1 and out.cdr.car == 2 and out.cdr.cdr == 3

    def test_prim_decodes_to_the_live_spec(self):
        from repro.lang.prims import PRIMITIVES

        out = self._roundtrip_literal(PRIMITIVES[sym("+")])
        assert out is PRIMITIVES[sym("+")]

    def test_deep_list_does_not_overflow_the_stack(self):
        deep = datum_to_value(list(range(50_000)))
        out = self._roundtrip_literal(deep)
        node = out
        for expected in range(3):
            assert node.car == expected
            node = node.cdr

    def test_unencodable_literal_fails_loudly(self):
        t = Template(
            code=((Op.CONST, 0), (Op.RETURN,)),
            literals=(object(),),
            arity=0,
            nlocals=0,
            name="bad",
        )
        with pytest.raises(CodecError, match="cannot encode"):
            encode_template(t)

    @given(value=data)
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_data_round_trips(self, value):
        from repro.runtime.values import scheme_equal

        rt_value = datum_to_value(value)
        out = self._roundtrip_literal(rt_value)
        assert scheme_equal(out, rt_value)


class TestTemplateRoundTrip:
    def test_power_template(self):
        t = _template_of(POWER)
        t2 = decode_template(encode_template(t))
        assert disassemble(t) == disassemble(t2)
        assert (t2.arity, t2.nlocals, t2.name) == (t.arity, t.nlocals, t.name)

    def test_nested_templates(self):
        t = _template_of(
            "(define (make-adder n) (lambda (x) (+ x n)))"
        )
        t2 = decode_template(encode_template(t))
        assert disassemble(t) == disassemble(t2)

    @given(expr=st.one_of(arith_exprs(), list_exprs(), higher_order_exprs()))
    @settings(max_examples=60, deadline=None)
    def test_assemble_encode_decode_disasm_is_identity(self, expr):
        """The satellite property: assemble -> encode -> decode ->
        disassemble is byte-identical to disassembling the original, for
        hypothesis-generated programs."""
        t = _template_of(f"(define (main) {expr})")
        assert disassemble(decode_template(encode_template(t))) == disassemble(t)


class TestFraming:
    def test_bad_magic(self):
        data = bytearray(encode_template(_template_of(POWER)))
        data[:4] = b"NOPE"
        with pytest.raises(CodecError, match="magic"):
            decode_template(bytes(data))

    def test_unsupported_version(self):
        data = bytearray(encode_template(_template_of(POWER)))
        data[4:6] = (CODEC_VERSION + 1).to_bytes(2, "big")
        with pytest.raises(CodecError, match="version"):
            decode_template(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(CodecError, match="too short"):
            decode_template(MAGIC + b"\x00")

    def test_truncated_payload(self):
        data = encode_template(_template_of(POWER))
        with pytest.raises(CodecError, match="length mismatch"):
            decode_template(data[:-3])

    @pytest.mark.parametrize("offset_from_payload", [0, 1, 7, 40])
    def test_every_corrupted_byte_is_rejected_by_crc(
        self, offset_from_payload
    ):
        data = bytearray(encode_template(_template_of(POWER)))
        header = 14  # magic 4 + version 2 + length 4 + crc 4
        data[header + offset_from_payload] ^= 0xFF
        with pytest.raises(CodecError, match="CRC mismatch"):
            decode_template(bytes(data))

    def test_trailing_garbage_is_rejected(self):
        # Valid frame whose payload parses but leaves bytes behind: the
        # decoder must not silently ignore them.  Rebuild the frame with
        # an extended payload so the CRC is consistent.
        import struct
        import zlib

        data = encode_template(_template_of(POWER))
        payload = data[14:] + b"\x00"
        framed = struct.pack(
            ">4sHII", MAGIC, CODEC_VERSION, len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(CodecError, match="trailing"):
            decode_template(framed)

    def test_not_a_template_payload(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        img = encode_residual(gen.to_object_code([3]))
        with pytest.raises(CodecError, match="not a template"):
            decode_template(img)


class TestResidualRoundTrip:
    # The acceptance corpus: object-code residual programs across
    # strategies, closures, and workload shapes.
    CORPUS = [
        (POWER, "DS", "power", ["5"], ["2"], "duplicate"),
        (POWER, "DS", "power", ["0"], ["9"], "duplicate"),
        (
            "(define (f d) (+ (if (zero? d) 1 2) 10))",
            "D", None, [], ["0"], "join",
        ),
        (
            "(define (apply-n f n x)"
            " (if (zero? n) x (apply-n f (- n 1) (f x))))"
            "(define (main n x) (apply-n (lambda (y) (* y y)) n x))",
            "SD", "main", ["3"], ["2"], "duplicate",
        ),
        (
            "(define (lookup key alist)"
            " (if (null? alist) #f"
            "  (if (eq? key (car (car alist))) (cadr (car alist))"
            "   (lookup key (cdr alist)))))",
            "DS", "lookup", ["((a 1) (b 2))"], ["b"], "duplicate",
        ),
    ]

    @pytest.mark.parametrize(
        "source,sig,goal,static,dynamic,dif", CORPUS
    )
    def test_decode_encode_runs_identically(
        self, source, sig, goal, static, dynamic, dif
    ):
        from repro.runtime.values import scheme_equal
        from repro.sexp import read

        gen = make_generating_extension(source, sig, goal=goal)
        statics = [datum_to_value(read(s)) for s in static]
        dynamics = [datum_to_value(read(d)) for d in dynamic]
        rp = gen.to_object_code(statics, dif_strategy=dif)
        rp2 = decode_residual(encode_residual(rp))
        assert rp2.fingerprint() == rp.fingerprint()
        assert scheme_equal(rp2.run(dynamics), rp.run(dynamics))
        assert rp2.stats["loaded_from_image"]

    def test_source_residual_round_trips(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        rs = gen.to_source([4])
        rs2 = decode_residual(encode_residual(rs))
        assert rs2.fingerprint() == rs.fingerprint()
        assert rs2.run([3]) == 81

    def test_goal_and_params_survive(self):
        gen = make_generating_extension(POWER, "DS", goal="power")
        rp = gen.to_object_code([4])
        rp2 = decode_residual(encode_residual(rp))
        assert rp2.goal is rp.goal
        assert rp2.goal_params == rp.goal_params

    def test_fingerprint_digest_checked_on_decode(self):
        """Tampering that keeps the frame valid (re-computed CRC) is still
        caught by the embedded fingerprint digest."""
        import struct
        import zlib

        gen = make_generating_extension(POWER, "DS", goal="power")
        img = encode_residual(gen.to_object_code([3]))
        payload = bytearray(img[14:])
        # Flip a byte deep in the payload (inside template code, past the
        # digest string near the start).
        payload[-2] ^= 0x01
        reframed = struct.pack(
            ">4sHII", MAGIC, CODEC_VERSION, len(payload),
            zlib.crc32(bytes(payload)),
        ) + bytes(payload)
        with pytest.raises(CodecError):
            decode_residual(reframed)

    def test_stale_primitive_rejected(self):
        from repro.lang.prims import PRIMITIVES

        t = Template(
            code=((Op.CONST, 0), (Op.RETURN,)),
            literals=(PRIMITIVES[sym("+")],),
            arity=0,
            nlocals=0,
            name="p",
        )
        data = bytearray(encode_template(t))
        # Rewrite the primitive's name in place: "+" -> "~" (same length),
        # then fix the CRC so only the decoder's prim lookup can object.
        import struct
        import zlib

        payload = bytearray(data[14:])
        idx = payload.rindex(b"\x01+")  # length-1 string "+"
        payload[idx + 1] = ord("~")
        reframed = struct.pack(
            ">4sHII", MAGIC, CODEC_VERSION, len(payload),
            zlib.crc32(bytes(payload)),
        ) + bytes(payload)
        with pytest.raises(CodecError, match="stale image"):
            decode_template(reframed)


class TestFileHelpers:
    def test_save_and_load_image(self, tmp_path):
        gen = make_generating_extension(POWER, "DS", goal="power")
        rp = gen.to_object_code([6])
        path = tmp_path / "power6.rpoi"
        digest = save_image(rp, path)
        assert len(digest) == 64
        rp2 = load_image(path)
        assert rp2.run([2]) == 64

    def test_load_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "junk.rpoi"
        path.write_bytes(b"this is not an image at all")
        with pytest.raises(CodecError):
            load_image(path)
