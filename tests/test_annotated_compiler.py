"""Tests for the annotated compiler (Acts 2-3).

The same compilator definitions, read two ways, must agree:

* annotation erasure yields a compiler identical to the handwritten Act-1
  ANF compiler (template-for-template);
* the derived ``make-residual-...`` combinators build the same fragments
  the compilators build.
"""

from hypothesis import given, settings

from repro.anf import anf_convert
from repro.compiler import ANFCompiler, DerivedANFCompiler
from repro.compiler.annotated import (
    DepthTracker,
    GenCenv,
    derive_combinator,
    compilator_if,
    make_residual_const,
    make_residual_if,
    make_residual_let,
    make_residual_prim,
    make_residual_return,
    make_residual_tail_call,
    make_residual_variable,
)
from repro.compiler.cenv import CompileTimeEnv
from repro.lang import parse_expr
from repro.lang.prims import PRIMITIVES
from repro.sexp import sym
from repro.vm import Machine, VmClosure, assemble, disassemble
from tests.strategies import arith_exprs, higher_order_exprs, list_exprs


def compile_both(source: str):
    expr = anf_convert(parse_expr(source))
    handwritten = ANFCompiler().compile_procedure((), expr, name="t")
    derived = DerivedANFCompiler().compile_procedure((), expr, name="t")
    return handwritten, derived


class TestErasureEqualsHandwritten:
    CASES = [
        "42",
        "'(a (b) 3)",
        "(+ 1 2)",
        "(if (< 1 2) 'a 'b)",
        "(let ((x (+ 1 2))) (* x x))",
        "((lambda (x y) (- x y)) 10 3)",
        "(((lambda (a) (lambda (b) (+ a b))) 1) 2)",
        "(let ((f (lambda (x) (* x 2)))) (f (f 5)))",
        "(if (zero? 0) (let ((y 1)) y) 2)",
    ]

    def test_identical_disassembly_on_cases(self):
        for source in self.CASES:
            handwritten, derived = compile_both(source)
            assert disassemble(handwritten) == disassemble(derived), source

    @given(arith_exprs(depth=4))
    @settings(max_examples=50)
    def test_identical_on_random_arith(self, source):
        handwritten, derived = compile_both(source)
        assert disassemble(handwritten) == disassemble(derived)

    @given(higher_order_exprs(depth=4))
    @settings(max_examples=50)
    def test_identical_on_random_higher_order(self, source):
        handwritten, derived = compile_both(source)
        assert disassemble(handwritten) == disassemble(derived)

    @given(list_exprs(depth=3))
    @settings(max_examples=30)
    def test_identical_on_random_lists(self, source):
        handwritten, derived = compile_both(source)
        assert disassemble(handwritten) == disassemble(derived)

    def test_derived_compiler_runs(self):
        expr = anf_convert(parse_expr("(let ((x (* 6 7))) x)"))
        t = DerivedANFCompiler().compile_procedure((), expr, name="t")
        assert Machine().call(VmClosure(t, ()), []) == 42


def _ctx(params=()):
    env = CompileTimeEnv.for_procedure(tuple(params))
    tracker = DepthTracker(len(params))
    return GenCenv(env, tracker), len(params)


class TestCombinators:
    def run_body(self, emit, params=(), args=()):
        cenv, depth = _ctx(params)
        fragment = emit(cenv, depth)
        template = assemble(fragment, len(params), cenv.tracker.max_depth, "t")
        return Machine().call(VmClosure(template, ()), list(args))

    def test_const_return(self):
        emit = make_residual_return(make_residual_const(7))
        assert self.run_body(emit) == 7

    def test_variable(self):
        x = sym("x")
        emit = make_residual_return(make_residual_variable(x))
        assert self.run_body(emit, params=(x,), args=[99]) == 99

    def test_prim(self):
        spec = PRIMITIVES[sym("+")]
        emit = make_residual_return(
            make_residual_prim(
                spec, (make_residual_const(2), make_residual_const(3))
            )
        )
        assert self.run_body(emit) == 5

    def test_let_allocates_slot(self):
        x = sym("t")
        spec = PRIMITIVES[sym("*")]
        rhs = make_residual_prim(
            spec, (make_residual_const(6), make_residual_const(7))
        )
        body = make_residual_return(make_residual_variable(x))
        emit = make_residual_let(x, rhs, body)
        assert self.run_body(emit) == 42

    def test_if_shares_one_label_per_invocation(self):
        # The _let annotation: the label made by make-label must be the
        # same label at both use sites, and fresh across invocations.
        emit = make_residual_if(
            make_residual_const(False),
            make_residual_return(make_residual_const(1)),
            make_residual_return(make_residual_const(2)),
        )
        assert self.run_body(emit) == 2
        assert self.run_body(emit) == 2  # second invocation: fresh label

    def test_tail_call_emits_tail_call_op(self):
        from repro.vm import Op

        f = sym("f")
        emit = make_residual_tail_call(
            make_residual_variable(f), (make_residual_const(1),)
        )
        cenv, depth = _ctx()
        fragment = emit(cenv, depth)
        template = assemble(fragment, 0, 0, "t")
        ops = [instr[0] for instr in template.code]
        assert Op.TAIL_CALL in ops
        assert Op.CALL not in ops

    def test_derive_combinator_arity_check(self):
        import pytest

        combo = derive_combinator(compilator_if, (), ("test", "then", "alt"))
        with pytest.raises(TypeError):
            combo("only-one")

    def test_combinator_reuse_is_independent(self):
        # One combinator application used at two different depths emits
        # depth-correct code each time.
        x = sym("v")
        spec = PRIMITIVES[sym("+")]
        rhs = make_residual_prim(
            spec, (make_residual_const(1), make_residual_const(2))
        )
        body = make_residual_return(make_residual_variable(x))
        emit = make_residual_let(x, rhs, body)
        cenv1, d1 = _ctx()
        frag1 = emit(cenv1, d1)
        y = sym("y")
        cenv2, d2 = _ctx(params=(y,))
        frag2 = emit(cenv2, d2)
        t1 = assemble(frag1, 0, cenv1.tracker.max_depth, "a")
        t2 = assemble(frag2, 1, cenv2.tracker.max_depth, "b")
        from repro.vm import Op

        # The SETLOC slots differ with the starting depth.
        slot1 = [i[1] for i in t1.code if i[0] == Op.SETLOC][0]
        slot2 = [i[1] for i in t2.code if i[0] == Op.SETLOC][0]
        assert slot1 == 0
        assert slot2 == 1
