"""Tests for the content-addressed on-disk image store."""

from __future__ import annotations

import os

import pytest

from repro.image.codec import CodecError, encode_residual
from repro.image.store import (
    ImageStore,
    StoreKey,
    UnpersistableKey,
    store_key,
    verify_residual,
)
from repro.pe.values import freeze_static
from repro.rtcg import make_generating_extension, program_digest
from repro.sexp.datum import Char, sym
from repro.vm.verify import VerificationError

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


@pytest.fixture
def gen():
    return make_generating_extension(POWER, "DS", goal="power")


def _key(n: int = 1) -> StoreKey:
    return store_key("prog", (n,), "duplicate", "object")


class TestStoreKey:
    def test_deterministic(self):
        frozen = (1, "a", sym("s"), 2.5, Char("x"), (True, None, b"raw"))
        assert store_key("p", frozen, "duplicate", "object") == store_key(
            "p", frozen, "duplicate", "object"
        )

    def test_every_component_matters(self):
        base = store_key("p", (1,), "duplicate", "object")
        assert store_key("q", (1,), "duplicate", "object") != base
        assert store_key("p", (2,), "duplicate", "object") != base
        assert store_key("p", (1,), "join", "object") != base
        assert store_key("p", (1,), "duplicate", "source") != base

    def test_no_injection_across_component_boundaries(self):
        # ("ab", "c") and ("a", "bc") must hash differently.
        assert store_key("p", ("ab", "c"), "d", "k") != store_key(
            "p", ("a", "bc"), "d", "k"
        )

    def test_str_and_symbol_distinct(self):
        assert store_key("p", ("x",), "d", "k") != store_key(
            "p", (sym("x"),), "d", "k"
        )

    def test_bool_and_int_distinct(self):
        assert store_key("p", (True,), "d", "k") != store_key(
            "p", (1,), "d", "k"
        )

    def test_closure_tagged_statics_are_unpersistable(self):
        with pytest.raises(UnpersistableKey):
            store_key("p", (("closure", 140234),), "d", "k")

    def test_opaque_tagged_statics_are_unpersistable(self):
        with pytest.raises(UnpersistableKey):
            store_key("p", ((1, ("opaque", "Thing", 99)),), "d", "k")

    def test_unknown_python_object_is_unpersistable(self):
        with pytest.raises(UnpersistableKey):
            store_key("p", (object(),), "d", "k")

    def test_frozen_interpreter_values_are_persistable(self):
        from repro.runtime.values import datum_to_value
        from repro.sexp import read

        frozen = freeze_static(datum_to_value(read("(1 (a b) 2.5 #\\x)")))
        store_key("p", (frozen,), "d", "k")  # must not raise


class TestPutGet:
    def test_round_trip(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        rp = gen.to_object_code([5])
        digest = store.put(_key(), rp)
        assert digest is not None
        out = store.get(_key())
        assert out is not None
        assert out.fingerprint() == rp.fingerprint()
        assert out.run([2]) == 32
        assert store.stats()["hits"] == 1

    def test_miss(self, tmp_path):
        store = ImageStore(tmp_path / "store")
        assert store.get(_key()) is None
        assert store.stats()["misses"] == 1

    def test_content_addressing_dedupes_objects(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        rp = gen.to_object_code([5])
        d1 = store.put(_key(1), rp)
        d2 = store.put(_key(2), rp)  # same image, second key
        assert d1 == d2
        objects = [
            o
            for shard in (tmp_path / "store" / "objects").iterdir()
            for o in shard.iterdir()
        ]
        assert len(objects) == 1
        assert len(list((tmp_path / "store" / "index").iterdir())) == 2

    def test_corrupt_object_behaves_like_a_miss(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        digest = store.put(_key(), gen.to_object_code([5]))
        path = store._object_path(digest)
        data = bytearray(path.read_bytes())
        data[20] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get(_key()) is None
        assert store.stats()["read_errors"] == 1

    def test_dangling_ref_is_a_miss(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        digest = store.put(_key(), gen.to_object_code([5]))
        store._object_path(digest).unlink()
        assert store.get(_key()) is None

    def test_load_rejects_mislabeled_object(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        data = encode_residual(gen.to_object_code([5]))
        fake = "0" * 64
        store._atomic_write(store._object_path(fake), data)
        with pytest.raises(CodecError, match="content-address"):
            store.load(fake)

    def test_load_missing_digest_raises(self, tmp_path):
        store = ImageStore(tmp_path / "store")
        with pytest.raises(FileNotFoundError):
            store.load("ff" * 32)

    def test_source_programs_are_storable(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        key = store_key("p", (4,), "duplicate", "source")
        assert store.put(key, gen.to_source([4])) is not None
        out = store.get(key)
        assert out is not None
        assert out.run([3]) == 81


class TestVerifyOnLoad:
    def _poison(self, store: ImageStore, gen) -> str:
        """Store an image whose template is well-framed (valid CRC) but
        unsound bytecode: a branch target past the end of the code."""
        from repro.vm.machine import VmClosure
        from repro.vm.instructions import Op
        from repro.vm.template import Template

        rp = gen.to_object_code([5])
        bad = Template(
            code=((Op.JUMP, 99), (Op.RETURN,)),
            literals=(),
            arity=1,
            nlocals=1,
            name=next(iter(rp.machine.globals.values())).template.name,
        )
        name = next(iter(rp.machine.globals))
        rp.machine.globals[name] = VmClosure(bad, ())
        digest = store.put(_key(), rp)
        assert digest is not None
        return digest

    def test_unsound_image_rejected_by_default(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        digest = self._poison(store, gen)
        with pytest.raises(VerificationError):
            store.load(digest)
        assert store.get(_key()) is None  # behaves like a miss
        assert store.stats()["verify_failures"] == 1

    def test_explicit_opt_out(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        self._poison(store, gen)
        assert store.get(_key(), verify=False) is not None

    def test_verify_residual_passes_sound_code(self, gen):
        verify_residual(gen.to_object_code([3]))

    def test_verify_residual_is_vacuous_for_source(self, gen):
        verify_residual(gen.to_source([3]))


class TestGc:
    def test_size_bound_evicts_lru(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        digests = []
        for n in range(4):
            digests.append(store.put(_key(n), gen.to_object_code([n])))
        paths = [store._object_path(d) for d in digests]
        # Age the first two objects, then keep only enough budget for two.
        for i, p in enumerate(paths):
            os.utime(p, (1000 + i, 1000 + i))
        sizes = [p.stat().st_size for p in paths]
        report = store.gc(max_bytes=sizes[2] + sizes[3])
        assert report["removed_objects"] == 2
        assert report["removed_refs"] == 2
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        assert store.get(_key(0)) is None
        assert store.get(_key(3)) is not None

    def test_load_refreshes_recency(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        d0 = store.put(_key(0), gen.to_object_code([0]))
        d1 = store.put(_key(1), gen.to_object_code([1]))
        p0, p1 = store._object_path(d0), store._object_path(d1)
        os.utime(p0, (1000, 1000))
        os.utime(p1, (2000, 2000))
        store.load(d0)  # touch: now most recent
        store.gc(max_bytes=p0.stat().st_size)
        assert p0.exists() and not p1.exists()

    def test_gc_drops_dangling_refs(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        digest = store.put(_key(), gen.to_object_code([5]))
        store._object_path(digest).unlink()
        report = store.gc()
        assert report["removed_refs"] == 1
        assert store.ls() == []

    def test_put_triggers_gc_when_bounded(self, tmp_path, gen):
        # A one-byte budget cannot retain any object, so each put gc's
        # away everything it (and its predecessors) wrote.
        small = ImageStore(tmp_path / "store", max_bytes=1)
        for n in range(3):
            assert small.put(_key(n), gen.to_object_code([n])) is not None
        objects = [
            o
            for shard in (tmp_path / "store" / "objects").iterdir()
            for o in shard.iterdir()
        ]
        assert objects == []
        assert small.stats()["gc_removed_objects"] == 3


class TestLs:
    def test_ls_describes_images(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        store.put(_key(), gen.to_object_code([5]))
        (entry,) = store.ls()
        assert entry["key"] == _key().digest
        assert entry["goal"].startswith("power")  # residual names are gensym'd
        assert entry["kind"] == "object"
        assert entry["bytes"] > 0

    def test_ls_reports_corrupt_entries(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        digest = store.put(_key(), gen.to_object_code([5]))
        store._object_path(digest).write_bytes(b"junk")
        (entry,) = store.ls()
        assert "error" in entry

    def test_ls_empty(self, tmp_path):
        assert ImageStore(tmp_path / "store").ls() == []


class TestGracefulDegradation:
    # chmod tricks don't work under root (CI containers), so an
    # uncreatable store is simulated with a regular file where a parent
    # directory would have to be.

    def test_unwritable_root(self, tmp_path, gen):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = ImageStore(blocker / "store")
        assert not store.writable
        assert store.put(_key(), gen.to_object_code([5])) is None
        assert store.get(_key()) is None
        assert store.stats()["write_errors"] == 1

    def test_fresh_handle_on_existing_store_serves_reads(self, tmp_path, gen):
        root = tmp_path / "store"
        ImageStore(root).put(_key(), gen.to_object_code([5]))
        reader = ImageStore(root)
        out = reader.get(_key())
        assert out is not None
        assert out.run([2]) == 32

    def test_extension_falls_back_when_store_unwritable(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        gen = make_generating_extension(
            POWER, "DS", goal="power", store_dir=blocker / "store"
        )
        rp = gen.to_object_code([5])
        assert rp.run([2]) == 32
        stats = gen.cache_stats()
        assert stats["specializer_runs"] == 1
        assert not stats["store"]["writable"]


class TestExtensionIntegration:
    def test_write_through_and_l2_hit(self, tmp_path):
        store_dir = tmp_path / "store"
        gen = make_generating_extension(
            POWER, "DS", goal="power", store_dir=store_dir
        )
        rp = gen.to_object_code([5])
        assert "image_digest" in rp.stats
        # Drop L1 so the next application must go through L2.
        gen.cache_clear()
        rp2 = gen.to_object_code([5])
        assert rp2.stats.get("disk_hit") is True
        assert rp2.fingerprint() == rp.fingerprint()
        stats = gen.cache_stats()
        assert stats["specializer_runs"] == 1
        assert stats["store"]["hits"] == 1

    def test_identity_keyed_statics_skip_persistence(self, tmp_path):
        # An unhashable host object freezes to an ("opaque", type, id)
        # tag — meaningless in another process, so the image must not be
        # persisted (while in-process specialization still works).
        gen = make_generating_extension(
            "(define (f s d) (+ d 1))",
            "SD",
            goal="f",
            store_dir=tmp_path / "store",
        )
        opaque = type("Opaque", (), {"__hash__": None})()
        rp = gen.to_object_code([opaque])
        assert rp.run([41]) == 42
        assert "image_digest" not in rp.stats
        stats = gen.cache_stats()
        assert stats["store"]["writes"] == 0
        assert stats["store"]["misses"] == 0  # L2 never even probed

    def test_program_digest_separates_programs(self, tmp_path):
        from repro.lang import parse_program

        p1 = parse_program(POWER, goal="power")
        p2 = parse_program(
            "(define (power x n) (if (zero? n) 2 (* x (power x (- n 1)))))",
            goal="power",
        )
        assert program_digest(p1, "DS") != program_digest(p2, "DS")
        assert program_digest(p1, "DS") != program_digest(p1, "SD")
        assert program_digest(p1, "DS") == program_digest(p1, "DS")

    def test_cross_program_isolation_in_one_store(self, tmp_path):
        """Two different programs sharing one store directory never serve
        each other's images."""
        store_dir = tmp_path / "store"
        gen_a = make_generating_extension(
            POWER, "DS", goal="power", store_dir=store_dir
        )
        gen_b = make_generating_extension(
            "(define (power x n) (if (zero? n) 0 (* x (power x (- n 1)))))",
            "DS",
            goal="power",
            store_dir=store_dir,
        )
        assert gen_a.to_object_code([3]).run([2]) == 8
        assert gen_b.to_object_code([3]).run([2]) == 0
        gen_a.cache_clear()
        assert gen_a.to_object_code([3]).run([2]) == 8


class TestDurability:
    """The fsync-before-rename fix and the fsck repair path."""

    def test_put_fsyncs_before_rename(self, tmp_path, gen, monkeypatch):
        """Regression: `_atomic_write` must flush+fsync the temp file
        BEFORE `os.replace`, else a crash after a "successful" put can
        leave a zero-length object under the final name."""
        events: list[str] = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        store = ImageStore(tmp_path / "store")
        assert store.put(_key(), gen.to_object_code([5])) is not None
        # every rename (object AND index ref) is preceded by an fsync
        first_replace = events.index("replace")
        assert "fsync" in events[:first_replace]
        for i, ev in enumerate(events):
            if ev == "replace":
                assert "fsync" in events[:i]

    def test_fsck_quarantines_truncated_object(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        digest = store.put(_key(), gen.to_object_code([5]))
        # simulate a torn write: truncate the object in place
        store._object_path(digest).write_bytes(b"")
        report = store.fsck()
        assert report["checked"] == 1
        assert report["corrupt"] == [digest]
        assert report["quarantined"] == 1
        assert report["removed_refs"] == 1
        assert not report["ok"]
        assert store.stats()["fsck_corrupt"] == 1
        # the torn object is quarantined aside, not silently served
        assert not store._object_path(digest).exists()
        assert (store.backend.quarantine_dir / digest).exists()
        # later gets miss cleanly
        assert store.get(_key()) is None
        # and a second fsck is clean
        assert store.fsck()["ok"]

    def test_fsck_clean_store(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        store.put(_key(), gen.to_object_code([5]))
        report = store.fsck()
        assert report == {
            "checked": 1, "corrupt": [], "quarantined": 0,
            "removed_refs": 0, "ok": True,
        }


class TestTornRefs:
    """Regression: a torn/empty index ref (crashed writer) used to make
    `get()` raise and survived `gc()` forever."""

    def _torn_ref(self, store: ImageStore, name: str = "deadbeef") -> None:
        (store.index_dir / name).write_text("")

    def test_get_on_torn_ref_is_a_miss_not_an_error(self, tmp_path):
        store = ImageStore(tmp_path / "store")
        key = _key()
        self._torn_ref(store, key.digest)
        assert store.get(key) is None  # used to raise IsADirectoryError
        assert store.stats()["misses"] == 1

    def test_gc_prunes_torn_refs(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        store.put(_key(), gen.to_object_code([5]))
        self._torn_ref(store, "torn-empty")
        (store.index_dir / "torn-garbage").write_text("not a digest\n")
        report = store.gc()  # no size pressure: pure ref hygiene
        assert report["removed_objects"] == 0
        assert report["removed_refs"] == 2
        assert store.stats()["gc_removed_refs"] == 2
        # the healthy ref survived
        assert store.get(_key()) is not None

    def test_gc_prunes_refs_to_missing_objects(self, tmp_path, gen):
        store = ImageStore(tmp_path / "store")
        digest = store.put(_key(), gen.to_object_code([5]))
        store._object_path(digest).unlink()
        report = store.gc()
        assert report["removed_refs"] == 1
        assert store.ls() == []


class TestConcurrentGetVsGc:
    """A gc (this process or another) may delete an object between
    `get()`'s index read and its object load: that is a miss, never an
    exception."""

    def test_deletion_between_index_read_and_load(
        self, tmp_path, gen, monkeypatch
    ):
        store = ImageStore(tmp_path / "store")
        digest = store.put(_key(), gen.to_object_code([5]))
        real_read = store.backend.read_object

        def racing_read(d):
            # the "concurrent gc" wins the race just before the load
            path = store._object_path(d)
            if path.exists():
                path.unlink()
            return real_read(d)

        monkeypatch.setattr(store.backend, "read_object", racing_read)
        assert store.get(_key()) is None
        stats = store.stats()
        assert stats["misses"] == 1
        assert store._object_path(digest).exists() is False

    def test_threaded_get_vs_gc_hammer(self, tmp_path, gen):
        import threading

        store = ImageStore(tmp_path / "store", max_bytes=1)  # evict-happy
        rp = gen.to_object_code([5])
        keys = [_key(n) for n in range(4)]
        for k in keys:
            store.put(k, rp)
        errors: list[BaseException] = []
        stop = threading.Event()

        def getter():
            while not stop.is_set():
                for k in keys:
                    try:
                        store.get(k)
                    except BaseException as exc:  # noqa: B036
                        errors.append(exc)
                        stop.set()
                        return

        def collector():
            while not stop.is_set():
                try:
                    store.gc()
                    store.put(keys[0], rp)
                except BaseException as exc:  # noqa: B036
                    errors.append(exc)
                    stop.set()
                    return

        threads = [threading.Thread(target=getter) for _ in range(3)]
        threads.append(threading.Thread(target=collector))
        for t in threads:
            t.start()
        stop.wait(timeout=1.5)
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert errors == []
