"""Connection-state regression tests for the specialization client.

A request/response exchange that dies mid-frame (timeout, peer reset,
torn frame) leaves an unknown number of bytes buffered in the TCP
stream.  The client MUST throw that connection away: reusing it would
desync the framing and corrupt every later exchange.  These tests pin
the fix — :meth:`SpecializationClient.request` resets ``_sock`` on any
transport-level failure and transparently reconnects on the next call.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.serve.client import ServiceError, SpecializationClient
from repro.serve.protocol import FrameError, recv_frame, send_frame


class _StubServer:
    """A scriptable one-connection-at-a-time frame server.

    Each accepted connection is handled by ``behavior(conn)``; the
    behaviors below model the failure modes mid-exchange.
    """

    def __init__(self):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self.connections = 0
        self._behaviors: list = []
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._closed = False

    def script(self, *behaviors) -> "_StubServer":
        """One behavior per expected connection, in accept order."""
        self._behaviors = list(behaviors)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while self._behaviors:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with self._lock:
                self.connections += 1
                behavior = self._behaviors.pop(0)
            try:
                behavior(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()
            if self._thread.is_alive():
                self._thread.join(timeout=5)


def _stall_mid_frame(conn: socket.socket) -> None:
    """Read the request, answer with HALF a frame header, then stall
    (connection stays open) until the peer gives up."""
    recv_frame(conn)
    conn.sendall(b"RP\x01\x00")  # 4 of the 8 header bytes, then silence
    try:
        conn.recv(1)  # blocks until the client closes its end
    except OSError:
        pass


def _close_mid_frame(conn: socket.socket) -> None:
    """Read the request, send a torn frame (header promising more
    payload than is ever written), then hang up."""
    recv_frame(conn)
    header = b"RP\x01\x00" + struct.pack(">I", 4096)
    conn.sendall(header + b'{"ty')


def _answer_pong(conn: socket.socket) -> None:
    recv_frame(conn)
    send_frame(conn, {"type": "pong", "v": 1})


def _answer_error(conn: socket.socket) -> None:
    recv_frame(conn)
    send_frame(
        conn,
        {"type": "error", "v": 1, "code": "BUSY", "message": "later",
         "retryable": True},
    )
    # keep serving: a typed error leaves the stream in sync
    _answer_pong(conn)


def test_timeout_mid_frame_resets_connection():
    """A server that stalls mid-frame must not poison the client: the
    timeout surfaces, the socket is dropped, and the next request
    reconnects and succeeds."""
    server = _StubServer().script(_stall_mid_frame, _answer_pong)
    try:
        client = SpecializationClient("127.0.0.1", server.port, timeout=0.2)
        with pytest.raises(OSError):
            client.request({"type": "ping"})
        # the poisoned connection is gone...
        assert client._sock is None
        # ...and the next exchange transparently reconnects and works.
        assert client.ping()
        assert server.connections == 2
        client.close()
    finally:
        server.close()


def test_torn_frame_resets_connection():
    """A peer hangup mid-frame (torn payload) raises FrameError and
    likewise resets the connection."""
    server = _StubServer().script(_close_mid_frame, _answer_pong)
    try:
        client = SpecializationClient("127.0.0.1", server.port, timeout=2.0)
        with pytest.raises(FrameError):
            client.request({"type": "ping"})
        assert client._sock is None
        assert client.ping()
        assert server.connections == 2
        client.close()
    finally:
        server.close()


def test_typed_error_keeps_connection_open():
    """A ServiceError arrives on an in-sync stream: the connection must
    be KEPT (closing it would defeat connection reuse on busy/denied)."""
    server = _StubServer().script(_answer_error)
    try:
        client = SpecializationClient("127.0.0.1", server.port, timeout=2.0)
        with pytest.raises(ServiceError):
            client.request({"type": "ping"})
        assert client._sock is not None
        assert client.ping()  # same connection, still in sync
        assert server.connections == 1
        client.close()
    finally:
        server.close()
