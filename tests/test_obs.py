"""The observability layer: tracer, metrics, facade, and instrumentation.

Covers the span tracer (nesting, threads, Chrome trace-event export,
text report, stage totals), the metrics registry, the module-level no-op
facade (disabled by default, reentrant installation), and the pipeline
instrumentation: one fig6-style cold generation must produce spans for
every stage — BTA, congruence lint, safety analysis, specialize,
assemble, bytecode verify — plus L1/L2 cache counters.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


class TestTracer:
    def test_spans_record_name_duration_attrs(self):
        tracer = Tracer()
        with tracer.span("stage.one", goal="power"):
            pass
        assert len(tracer) == 1
        (r,) = tracer.records
        assert r.name == "stage.one"
        assert r.duration >= 0
        assert r.attrs == {"goal": "power"}

    def test_nesting_depth_from_with_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner2"].depth == 1

    def test_set_attaches_attributes_mid_span(self):
        tracer = Tracer()
        with tracer.span("s") as sp:
            sp.set(result=7)
        assert tracer.records[0].attrs["result"] == 7

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()

        def work(i):
            with tracer.span(f"t{i}.outer"):
                with tracer.span(f"t{i}.inner"):
                    pass

        with ThreadPoolExecutor(max_workers=4) as ex:
            list(ex.map(work, range(4)))
        assert len(tracer) == 8
        for r in tracer.records:
            assert r.depth == (0 if r.name.endswith("outer") else 1)
        tids = {r.tid for r in tracer.records}
        for tid in tids:
            names = [r.name for r in tracer.records if r.tid == tid]
            # Both spans of one task live on one thread.
            assert len(names) % 2 == 0

    def test_chrome_trace_format(self):
        tracer = Tracer()
        with tracer.span("pe.bta", goal="power"):
            with tracer.span("vm.assemble"):
                pass
        trace = tracer.chrome_trace()
        # Valid JSON all the way down.
        parsed = json.loads(json.dumps(trace))
        assert parsed["displayTimeUnit"] == "ms"
        events = parsed["traceEvents"]
        assert len(events) == 2
        for ev in events:
            assert ev["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid", "cat", "args"} <= set(ev)
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        bta = next(e for e in events if e["name"] == "pe.bta")
        assert bta["cat"] == "pe"
        assert bta["args"] == {"goal": "power"}

    def test_report_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        report = tracer.report()
        lines = report.splitlines()
        outer = next(ln for ln in lines if "outer" in ln)
        inner = next(ln for ln in lines if "inner" in ln)
        assert len(inner) - len(inner.lstrip()) > len(outer) - len(
            outer.lstrip()
        )
        assert "ms" in outer

    def test_stage_totals_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage.a"):
                pass
        totals = tracer.stage_totals()
        assert totals["stage.a"]["count"] == 3
        assert totals["stage.a"]["seconds"] >= 0

    def test_empty_report(self):
        assert "no spans" in Tracer().report()


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.count("hits")
        m.count("hits", 2)
        assert m.counter_value("hits") == 3
        assert m.counter_value("absent") == 0

    def test_histograms_summarize(self):
        m = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            m.observe("size", v)
        s = m.snapshot()["histograms"]["size"]
        assert s["count"] == 3
        assert s["min"] == 1.0 and s["max"] == 3.0 and s["mean"] == 2.0

    def test_thread_safety_of_counts(self):
        m = MetricsRegistry()

        def bump(_):
            for _ in range(500):
                m.count("c")

        with ThreadPoolExecutor(max_workers=8) as ex:
            list(ex.map(bump, range(8)))
        assert m.counter_value("c") == 4000

    def test_report_lists_everything(self):
        m = MetricsRegistry()
        m.count("cache.l1.hit", 5)
        m.observe("gen.seconds", 0.25)
        report = m.report()
        assert "cache.l1.hit" in report and "gen.seconds" in report
        assert "(no metrics recorded)" == MetricsRegistry().report()


class TestFacade:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        # The disabled span is a shared no-op object.
        s1 = obs.span("anything", k=1)
        s2 = obs.span("else")
        assert s1 is s2
        with s1:
            s1.set(x=1)  # still a no-op
        obs.count("nothing")
        obs.observe("nothing", 1.0)
        with obs.time_histogram("nothing"):
            pass

    def test_tracing_installs_and_restores(self):
        assert not obs.enabled()
        with obs.tracing() as (tracer, metrics):
            assert obs.enabled()
            assert obs.current_tracer() is tracer
            assert obs.current_metrics() is metrics
            with obs.span("s"):
                obs.count("c")
        assert not obs.enabled()
        assert len(tracer) == 1
        assert metrics.counter_value("c") == 1

    def test_tracing_is_reentrant(self):
        with obs.tracing() as (outer, _):
            with obs.tracing() as (inner, _):
                with obs.span("x"):
                    pass
            assert obs.current_tracer() is outer
            with obs.span("y"):
                pass
        assert [r.name for r in inner.records] == ["x"]
        assert [r.name for r in outer.records] == ["y"]

    def test_traced_decorator(self):
        @obs.traced("mod.fn")
        def fn(a, b=0):
            return a + b

        assert fn(1, b=2) == 3  # disabled: plain call
        with obs.tracing() as (tracer, _):
            assert fn(4) == 4
        assert [r.name for r in tracer.records] == ["mod.fn"]

    def test_exceptions_still_recorded_and_propagate(self):
        with obs.tracing() as (tracer, _):
            with pytest.raises(ValueError):
                with obs.span("failing"):
                    raise ValueError("x")
        assert len(tracer) == 1


class TestPipelineInstrumentation:
    # Every pipeline stage must appear in the trace of a cold
    # generation — the tentpole's "text report covering every stage".
    EXPECTED_STAGES = (
        "pe.bta",
        "pe.congruence",
        "analysis.safety",
        "rtcg.generate",
        "pe.specialize",
        "vm.assemble",
        "vm.verify",
    )

    def test_cold_generation_covers_every_stage(self):
        from repro.rtcg import GeneratingExtension

        with obs.tracing() as (tracer, metrics):
            gen = GeneratingExtension(POWER, "DS", goal="power")
            rp = gen.to_object_code([5])
            assert rp.run([2]) == 32
        names = {r.name for r in tracer.records}
        for stage in self.EXPECTED_STAGES:
            assert stage in names, f"missing span for stage {stage}"
        # The specializer span nests under the rtcg.generate request.
        spec = next(r for r in tracer.records if r.name == "pe.specialize")
        assert spec.depth > 0
        assert metrics.counter_value("cache.l1.miss") == 1
        report = tracer.report()
        for stage in self.EXPECTED_STAGES:
            assert stage in report

    def test_l1_hit_and_miss_counters(self):
        from repro.rtcg import GeneratingExtension

        with obs.tracing() as (_, metrics):
            gen = GeneratingExtension(POWER, "DS", goal="power")
            gen.to_object_code([5])
            gen.to_object_code([5])
        assert metrics.counter_value("cache.l1.miss") == 1
        assert metrics.counter_value("cache.l1.hit") == 1

    def test_l2_store_spans_and_counters(self, tmp_path):
        from repro.rtcg import GeneratingExtension

        with obs.tracing() as (tracer, metrics):
            gen = GeneratingExtension(
                POWER, "DS", goal="power", store_dir=tmp_path / "store"
            )
            gen.to_object_code([5])
            # A fresh extension over the same program warm-starts from L2.
            gen2 = GeneratingExtension(
                POWER, "DS", goal="power", store_dir=tmp_path / "store"
            )
            rp = gen2.to_object_code([5])
            assert rp.stats.get("disk_hit")
        names = {r.name for r in tracer.records}
        assert "image.probe" in names
        assert "image.put" in names
        assert "image.load" in names
        assert "image.verify_on_load" in names
        assert metrics.counter_value("image.l2.write") == 1
        assert metrics.counter_value("image.l2.hit") == 1
        assert metrics.counter_value("image.l2.miss") >= 1

    def test_single_flight_wait_counter(self):
        from repro.pe.residual_cache import ResidualCache

        started = threading.Event()
        release = threading.Event()

        def slow():
            started.set()
            release.wait(5)
            return "v"

        with obs.tracing() as (tracer, metrics):
            cache = ResidualCache(4)
            with ThreadPoolExecutor(max_workers=2) as ex:
                leader = ex.submit(cache.get_or_generate, "k", slow)
                assert started.wait(5)
                waiter = ex.submit(cache.get_or_generate, "k", slow)
                while metrics.counter_value("cache.l1.wait") == 0:
                    if waiter.done():
                        break
                release.set()
                leader.result(5)
                waiter.result(5)
        assert metrics.counter_value("cache.l1.wait") == 1
        assert any(r.name == "cache.l1.wait" for r in tracer.records)

    def test_stage_timings_in_cache_stats(self):
        from repro.rtcg import GeneratingExtension

        gen = GeneratingExtension(POWER, "DS", goal="power")
        gen.to_object_code([5])
        stages = gen.cache_stats()["stages"]
        for stage in ("bta", "congruence", "safety_analysis", "specialize"):
            assert stage in stages, f"missing stage timing {stage}"
            assert stages[stage]["count"] >= 1
            assert stages[stage]["seconds"] >= 0
