"""Tests for the ANF compiler and the stock compiler, against the interpreter."""

import pytest
from hypothesis import given, settings

from repro.anf import anf_convert
from repro.compiler import ANFCompiler, StockCompiler, compile_program
from repro.compiler.anf_compiler import CompileError, compile_anf_expr
from repro.interp import Interpreter
from repro.lang import parse_expr, parse_program
from repro.runtime.values import scheme_equal
from repro.sexp import sym
from repro.vm import Machine, VmClosure
from tests.strategies import arith_exprs, higher_order_exprs, list_exprs


def run_anf_expr(source: str):
    expr = anf_convert(parse_expr(source))
    template = compile_anf_expr(expr)
    return Machine().call(VmClosure(template, ()), [])


def run_stock_expr(source: str):
    template = StockCompiler().compile_procedure((), parse_expr(source), name="top")
    return Machine().call(VmClosure(template, ()), [])


BOTH = pytest.mark.parametrize("run", [run_anf_expr, run_stock_expr], ids=["anf", "stock"])


@BOTH
class TestExpressionCompilation:
    def test_constant(self, run):
        assert run("42") == 42

    def test_arith(self, run):
        assert run("(+ (* 2 3) (- 10 4))") == 12

    def test_if(self, run):
        assert run("(if (< 1 2) 'yes 'no)") is sym("yes")

    def test_if_false_branch(self, run):
        assert run("(if (> 1 2) 'yes 'no)") is sym("no")

    def test_let_chain(self, run):
        assert run("(let ((x 2)) (let ((y (* x x))) (+ x y)))") == 6

    def test_lambda_application(self, run):
        assert run("((lambda (x y) (- x y)) 9 4)") == 5

    def test_closure_capture(self, run):
        assert run("(((lambda (a) (lambda (b) (+ a b))) 3) 4)") == 7

    def test_nested_closure_capture(self, run):
        assert (
            run(
                "((((lambda (a) (lambda (b) (lambda (c) (+ a (+ b c))))) 1) 2) 3)"
            )
            == 6
        )

    def test_quoted_data(self, run):
        assert run("(car (cdr '(1 2 3)))") == 2

    def test_truthiness(self, run):
        assert run("(if 0 1 2)") == 1

    def test_shadowing(self, run):
        assert run("(let ((x 1)) (let ((x 2)) x))") == 2

    def test_primitive_as_value(self, run):
        assert run("(let ((f car)) (f '(9 8)))") == 9


class TestStockOnly:
    """The stock compiler handles non-ANF input directly."""

    def test_nested_calls(self):
        assert run_stock_expr("(+ ((lambda (x) (* x x)) 3) ((lambda (y) y) 5))") == 14

    def test_if_as_argument(self):
        assert run_stock_expr("(* 2 (if (< 1 2) 10 20))") == 20

    def test_serious_test(self):
        assert run_stock_expr("(if ((lambda (x) (< x 5)) 3) 'lo 'hi)") is sym("lo")

    def test_call_inside_argument_keeps_stack(self):
        src = "(+ 1 (+ ((lambda (x) (+ x 1)) 2) 4))"
        assert run_stock_expr(src) == 8

    def test_if_join_point_value_context(self):
        assert run_stock_expr("(let ((x (if (< 1 2) 10 20))) (+ x 1))") == 11


class TestANFCompilerRejectsNonANF:
    def test_nested_call_rejected(self):
        with pytest.raises(Exception):
            compile_anf_expr(parse_expr("(+ 1 (f 2))"))

    def test_unknown_primitive(self):
        from repro.lang.ast import Prim

        with pytest.raises(CompileError):
            ANFCompiler(check=False).compile_procedure(
                (), Prim(sym("no-such-prim"), ()), name="x"
            )


class TestWholeProgramCompilation:
    FACT = "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))"

    def test_auto_mode_normalizes(self):
        p = parse_program(self.FACT)
        assert compile_program(p, compiler="auto").run([6]) == 720

    def test_stock_mode(self):
        p = parse_program(self.FACT)
        assert compile_program(p, compiler="stock").run([6]) == 720

    def test_anf_mode_requires_anf(self):
        p = parse_program(self.FACT)
        with pytest.raises(ValueError):
            compile_program(p, compiler="anf")

    def test_unknown_mode(self):
        p = parse_program(self.FACT)
        with pytest.raises(ValueError):
            compile_program(p, compiler="jit")

    def test_mutual_recursion_through_globals(self):
        p = parse_program(
            """
            (define (even? n) (if (zero? n) #t (odd? (- n 1))))
            (define (odd? n) (if (zero? n) #f (even? (- n 1))))
            (define (main n) (even? n))
            """
        )
        for mode in ("auto", "stock"):
            assert compile_program(p, compiler=mode).run([10]) is True

    def test_deep_tail_recursion(self):
        p = parse_program("(define (loop n) (if (zero? n) 'done (loop (- n 1))))")
        for mode in ("auto", "stock"):
            assert compile_program(p, compiler=mode).run([300000]) is sym("done")

    def test_instruction_count_positive(self):
        p = parse_program(self.FACT)
        assert compile_program(p).instruction_count() > 5

    def test_reuse_machine(self):
        p = parse_program(self.FACT)
        cp = compile_program(p)
        m = cp.machine()
        assert cp.run([3], machine=m) == 6
        assert cp.run([4], machine=m) == 24


class TestDifferentialAgainstInterpreter:
    @given(arith_exprs(depth=4))
    @settings(max_examples=60)
    def test_arith(self, source):
        expected = Interpreter().eval(parse_expr(source), None)
        assert run_anf_expr(source) == expected
        assert run_stock_expr(source) == expected

    @given(list_exprs(depth=4))
    @settings(max_examples=40)
    def test_lists(self, source):
        expected = Interpreter().eval(parse_expr(source), None)
        assert scheme_equal(run_anf_expr(source), expected)
        assert scheme_equal(run_stock_expr(source), expected)

    @given(higher_order_exprs(depth=4))
    @settings(max_examples=60)
    def test_higher_order(self, source):
        expected = Interpreter().eval(parse_expr(source), None)
        assert run_anf_expr(source) == expected
        assert run_stock_expr(source) == expected
