"""Tests for the command-line driver."""

import pytest

from repro.__main__ import main

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


@pytest.fixture()
def power_file(tmp_path):
    f = tmp_path / "power.scm"
    f.write_text(POWER)
    return str(f)


class TestRunCommands:
    def test_run(self, power_file, capsys):
        assert main(["run", power_file, "2", "10", "--goal", "power"]) == 0
        assert capsys.readouterr().out.strip() == "1024"

    def test_interp(self, power_file, capsys):
        assert main(["interp", power_file, "3", "3", "--goal", "power"]) == 0
        assert capsys.readouterr().out.strip() == "27"

    def test_run_with_list_argument(self, tmp_path, capsys):
        f = tmp_path / "rev.scm"
        f.write_text("(define (main xs) (reverse xs))")
        assert main(["run", str(f), "(1 2 3)"]) == 0
        assert capsys.readouterr().out.strip() == "(3 2 1)"

    def test_run_with_prelude(self, tmp_path, capsys):
        f = tmp_path / "m.scm"
        f.write_text("(define (main xs) (map1 add1 xs))")
        assert main(["run", str(f), "(1 2)", "--prelude"]) == 0
        assert capsys.readouterr().out.strip() == "(2 3)"


class TestSpecializeCommands:
    def test_specialize_prints_residual(self, power_file, capsys):
        code = main(
            [
                "specialize", power_file, "--goal", "power",
                "--sig", "DS", "--static", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "define" in out
        assert "*" in out

    def test_rtcg_runs_generated_code(self, power_file, capsys):
        code = main(
            [
                "rtcg", power_file, "--goal", "power", "--sig", "DS",
                "--static", "5", "--dynamic", "2",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "32"

    def test_rtcg_disassemble(self, power_file, capsys):
        main(
            [
                "rtcg", power_file, "--goal", "power", "--sig", "DS",
                "--static", "2", "--dynamic", "3", "--disassemble",
            ]
        )
        captured = capsys.readouterr()
        assert "PRIM" in captured.err
        assert captured.out.strip() == "9"

    def test_rtcg_join_strategy(self, tmp_path, capsys):
        f = tmp_path / "c.scm"
        f.write_text("(define (f d) (+ (if (zero? d) 1 2) 10))")
        main(
            [
                "rtcg", str(f), "--sig", "D", "--dynamic", "0",
                "--dif-strategy", "join",
            ]
        )
        assert capsys.readouterr().out.strip() == "11"

    def test_stats_reports_cache_counters(self, power_file, capsys):
        code = main(
            [
                "stats", power_file, "--goal", "power", "--sig", "DS",
                "--static", "5", "--repeat", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cold generation" in out
        assert "cached application" in out
        assert "3 hit(s), 1 miss(es)" in out

    def test_stats_source_backend(self, power_file, capsys):
        assert main(
            [
                "stats", power_file, "--goal", "power", "--sig", "DS",
                "--static", "3", "--backend", "source",
            ]
        ) == 0
        assert "backend:             source" in capsys.readouterr().out

    def test_annotate(self, power_file, capsys):
        assert main(
            ["annotate", power_file, "--goal", "power", "--sig", "DS"]
        ) == 0
        out = capsys.readouterr().out
        assert "lift" in out
        assert "[DS]" in out

    def test_memo_hint(self, power_file, capsys):
        main(
            [
                "specialize", power_file, "--goal", "power",
                "--sig", "DS", "--static", "2", "--memo", "power",
            ]
        )
        out = capsys.readouterr().out
        # Memoized: several residual definitions.
        assert out.count("(define") == 3


class TestCombinatorsCommand:
    def test_prints_module(self, capsys):
        assert main(["combinators"]) == 0
        out = capsys.readouterr().out
        assert "def make_residual_if" in out
        assert "make_label()" in out


class TestStaticAnalysisCommands:
    def test_lint_clean_bytecode_only(self, power_file, capsys):
        assert main(["lint", power_file, "--goal", "power"]) == 0
        out = capsys.readouterr().out
        assert "bytecode clean" in out

    def test_lint_with_signature(self, power_file, capsys):
        assert main(
            ["lint", power_file, "--goal", "power", "--sig", "DS"]
        ) == 0
        out = capsys.readouterr().out
        assert "signature and bytecode clean" in out

    def test_disasm_prints_templates(self, power_file, capsys):
        assert main(["disasm", power_file, "--goal", "power"]) == 0
        out = capsys.readouterr().out
        assert "template power" in out
        assert "JUMP_IF_FALSE" in out
        # Jump targets get block labels.
        assert "-> L0" in out
        assert "L0:" in out

    def test_disasm_verify_reports_ok(self, power_file, capsys):
        assert main(
            ["disasm", power_file, "--goal", "power", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified ok" in out

    def test_disasm_stock_compiler(self, power_file, capsys):
        assert main(
            ["disasm", power_file, "--goal", "power",
             "--compiler", "stock"]
        ) == 0
        assert "template power" in capsys.readouterr().out

    def test_run_no_verify(self, power_file, capsys):
        assert main(
            ["run", power_file, "2", "5", "--goal", "power", "--no-verify"]
        ) == 0
        assert capsys.readouterr().out.strip() == "32"

    def test_rtcg_no_verify(self, power_file, capsys):
        assert main(
            [
                "rtcg", power_file, "--goal", "power", "--sig", "DS",
                "--static", "3", "--dynamic", "2", "--no-verify",
            ]
        ) == 0
        assert capsys.readouterr().out.strip() == "8"


class TestStatsJson:
    def test_json_output_is_machine_readable(self, power_file, capsys):
        import json

        assert main(
            [
                "stats", power_file, "--goal", "power", "--sig", "DS",
                "--static", "5", "--repeat", "3", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "object"
        assert payload["dif_strategy"] == "duplicate"
        assert payload["cold_generation_ms"] > 0
        assert payload["cache"]["hits"] == 2
        assert payload["cache"]["misses"] == 1
        assert payload["disk_hit"] is False

    def test_json_with_store(self, power_file, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        assert main(
            [
                "stats", power_file, "--goal", "power", "--sig", "DS",
                "--static", "5", "--store", store, "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["store"]["writes"] == 1
        assert payload["cache"]["specializer_runs"] == 1


class TestTraceCommand:
    def test_text_report_covers_every_stage(self, power_file, capsys):
        assert main(
            [
                "trace", power_file, "--goal", "power", "--sig", "DS",
                "--static", "5", "--dynamic", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        for stage in (
            "pe.bta",
            "pe.congruence",
            "analysis.safety",
            "rtcg.generate",
            "pe.specialize",
            "vm.assemble",
            "vm.verify",
            "vm.run",
        ):
            assert stage in out, f"report is missing stage {stage}"
        assert "stage totals" in out
        assert "cache.l1.miss" in out

    def test_json_is_valid_chrome_trace(self, power_file, capsys):
        import json

        assert main(
            [
                "trace", power_file, "--goal", "power", "--sig", "DS",
                "--static", "3", "--dynamic", "2", "--json",
            ]
        ) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events
        names = {ev["name"] for ev in events}
        assert {"pe.bta", "pe.specialize", "vm.assemble"} <= names
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert isinstance(ev["tid"], int)

    def test_out_writes_trace_file(self, power_file, tmp_path, capsys):
        import json

        out_file = tmp_path / "trace.json"
        assert main(
            [
                "trace", power_file, "--goal", "power", "--sig", "DS",
                "--static", "2", "--dynamic", "2", "--json",
                "-o", str(out_file),
            ]
        ) == 0
        capsys.readouterr()
        trace = json.loads(out_file.read_text())
        assert trace["traceEvents"]

    def test_builtin_examples(self, capsys):
        assert main(["trace", "--builtin", "examples"]) == 0
        out = capsys.readouterr().out
        assert "example:quickstart.py:POWER" in out
        assert "example:rtcg_matcher.py:MATCHER" in out

    def test_requires_file_or_builtin(self, capsys):
        assert main(["trace"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_file_requires_sig(self, power_file, capsys):
        assert main(["trace", power_file, "--goal", "power"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--sig" in err


class TestProfileCommand:
    def test_text_report_ranks_hot_templates(self, power_file, capsys):
        assert main(
            [
                "profile", power_file, "--goal", "power", "--sig", "DS",
                "--static", "5", "--dynamic", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "result: 32" in out
        assert "opcode counts" in out
        assert "hot templates" in out
        assert "PRIM" in out

    def test_json_profile_shape(self, power_file, capsys):
        import json

        assert main(
            [
                "profile", power_file, "--goal", "power", "--sig", "DS",
                "--static", "4", "--dynamic", "3", "--repeat", "2",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        (profile,) = payload.values()
        assert profile["calls"] == 2
        assert profile["total_instructions"] > 0
        assert profile["opcodes"]["PRIM"] > 0
        for entry in profile["templates"].values():
            assert entry["invocations"] >= 1
            assert entry["instructions"] >= 1

    def test_repeat_scales_counts_linearly(self, power_file, capsys):
        import json

        counts = []
        for repeat in ("1", "3"):
            assert main(
                [
                    "profile", power_file, "--goal", "power",
                    "--sig", "DS", "--static", "5", "--dynamic", "2",
                    "--repeat", repeat, "--json",
                ]
            ) == 0
            (profile,) = json.loads(capsys.readouterr().out).values()
            counts.append(profile["total_instructions"])
        assert counts[1] == 3 * counts[0]

    def test_builtin_workloads(self, capsys):
        assert main(["profile", "--builtin", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "workload:mixwell" in out
        assert "workload:lazy" in out

    def test_requires_file_or_builtin(self, capsys):
        assert main(["profile"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_missing_file_is_an_error_not_a_traceback(self, capsys):
        assert main(
            ["profile", "/nonexistent/nope.scm", "--sig", "D"]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestImageCommands:
    def test_export_ls_load_gc_cycle(self, power_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            [
                "image", "export", power_file, "--goal", "power",
                "--sig", "DS", "--static", "5", "--store", store,
            ]
        ) == 0
        digest = capsys.readouterr().out.split()[0]
        assert len(digest) == 64

        assert main(["image", "ls", "--store", store]) == 0
        assert digest[:16] in capsys.readouterr().out

        # Digest prefixes resolve as long as they are unique.
        assert main(
            [
                "image", "load", digest[:12], "--store", store,
                "--dynamic", "2",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "32"
        assert "verified yes" in captured.err

        assert main(
            ["image", "gc", "--store", store, "--max-bytes", "0"]
        ) == 0
        assert "removed 1 object(s)" in capsys.readouterr().out
        assert main(["image", "ls", "--store", store]) == 0
        assert "store is empty" in capsys.readouterr().out

    def test_export_to_file_and_load(self, power_file, tmp_path, capsys):
        out_file = str(tmp_path / "power.rpoi")
        assert main(
            [
                "image", "export", power_file, "--goal", "power",
                "--sig", "DS", "--static", "4", "-o", out_file,
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["image", "load", out_file, "--dynamic", "3"]
        ) == 0
        assert capsys.readouterr().out.strip() == "81"

    def test_load_disassemble(self, power_file, tmp_path, capsys):
        out_file = str(tmp_path / "power.rpoi")
        main(
            [
                "image", "export", power_file, "--goal", "power",
                "--sig", "DS", "--static", "3", "-o", out_file,
            ]
        )
        capsys.readouterr()
        assert main(["image", "load", out_file, "--disassemble"]) == 0
        assert "PRIM" in capsys.readouterr().err

    def test_export_requires_a_destination(self, power_file, capsys):
        assert main(
            [
                "image", "export", power_file, "--goal", "power",
                "--sig", "DS", "--static", "3",
            ]
        ) == 2
        assert "needs --store" in capsys.readouterr().err

    def test_ls_json(self, power_file, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        main(
            [
                "image", "export", power_file, "--goal", "power",
                "--sig", "DS", "--static", "5", "--store", store,
            ]
        )
        capsys.readouterr()
        assert main(["image", "ls", "--store", store, "--json"]) == 0
        (entry,) = json.loads(capsys.readouterr().out)
        assert entry["kind"] == "object"
        assert entry["bytes"] > 0

    def test_load_rejects_corrupt_image(self, power_file, tmp_path, capsys):
        out_file = tmp_path / "power.rpoi"
        main(
            [
                "image", "export", power_file, "--goal", "power",
                "--sig", "DS", "--static", "3", "-o", str(out_file),
            ]
        )
        capsys.readouterr()
        data = bytearray(out_file.read_bytes())
        data[-1] ^= 0xFF
        out_file.write_bytes(bytes(data))
        assert main(["image", "load", str(out_file)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_load_unknown_digest(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["image", "load", "deadbeef", "--store", store]) == 1
        assert "error:" in capsys.readouterr().err

    def test_gc_dry_run_removes_nothing(self, power_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(
            [
                "image", "export", power_file, "--goal", "power",
                "--sig", "DS", "--static", "5", "--store", store,
            ]
        )
        capsys.readouterr()
        assert main(
            ["image", "gc", "--store", store, "--max-bytes", "0", "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "would remove" in out
        assert "(dry run)" in out
        # Nothing was actually collected: the image is still listed.
        assert main(["image", "ls", "--store", store]) == 0
        assert "store is empty" not in capsys.readouterr().out

    def test_gc_dry_run_json(self, power_file, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        main(
            [
                "image", "export", power_file, "--goal", "power",
                "--sig", "DS", "--static", "5", "--store", store,
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "image", "gc", "--store", store, "--max-bytes", "0",
                "--dry-run", "--json",
            ]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dry_run"] is True
        assert report["removed_objects"] >= 1
        assert report["would_remove"]


class TestDisasmCfg:
    def test_cfg_prints_block_table(self, power_file, capsys):
        assert main(["disasm", power_file, "--cfg"]) == 0
        out = capsys.readouterr().out
        assert ";; cfg power" in out
        # power has a conditional, so some block ends in a branch and
        # lists two successors.
        assert "JUMP_IF_FALSE" in out
        assert "(exit)" in out

    def test_cfg_json_block_shape(self, power_file, capsys):
        import json

        assert main(["disasm", power_file, "--cfg", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        (entry,) = [
            e for e in report["templates"] if e["template"] == "power"
        ]
        blocks = entry["cfg"]
        assert blocks[0]["start"] == 0
        for block in blocks:
            assert block["start"] < block["end"]
            assert isinstance(block["succs"], list)
            assert isinstance(block["preds"], list)
            assert block["terminator"]
        # Edges are consistent: every successor is some block's leader.
        starts = {b["start"] for b in blocks}
        assert all(s in starts for b in blocks for s in b["succs"])


class TestOptCommand:
    def test_opt_plain_file_reports_reduction(self, tmp_path, capsys):
        f = tmp_path / "chain.scm"
        # let-chains compile to the SETLOC/LOCAL slack the optimizer
        # exists to remove.
        f.write_text(
            "(define (main d)"
            " (let ((x (+ d 1))) (let ((y x)) (let ((z y)) (* z 2)))))"
        )
        assert main(["opt", str(f)]) == 0
        out = capsys.readouterr().out
        assert ";; opt: ok" in out
        assert "-- optimized to -->" in out

    def test_opt_differential_runs_both_loops(self, tmp_path, capsys):
        import json

        f = tmp_path / "chain.scm"
        f.write_text(
            "(define (main d)"
            " (let ((x (+ d 1))) (let ((y x)) (* y y))))"
        )
        assert main(["opt", str(f), "--dynamic", "6", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        (target,) = report["targets"].values()
        runs = target["differential"]
        assert set(runs) == {"machine", "profiled"}
        for run in runs.values():
            assert run["agree"] is True
            assert run["optimized"] == "49"

    def test_opt_builtin_workloads_json(self, capsys):
        import json

        assert main(["opt", "--builtin", "workloads", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        for target in report["targets"].values():
            assert target["after_instructions"] <= target["before_instructions"]
            for run in target["differential"].values():
                assert run["agree"] is True
            for entry in target["templates"]:
                assert entry["verified"], entry
                assert entry["violations"] == []

    def test_opt_without_target_is_an_error(self, capsys):
        assert main(["opt"]) == 1
        assert "error:" in capsys.readouterr().err


class TestOptSuperinstructions:
    def test_builtin_workload_json_gate(self, capsys):
        import json

        assert main([
            "opt", "--superinstructions", "--builtin", "workloads",
            "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        for target in report["targets"].values():
            assert target["dispatches_after"] < target["dispatches_before"]
            assert target["dispatch_reduction"] > 0.15
            assert target["differential"]["agree"] is True
            assert target["superinstructions"]
            # A selected pair can be shadowed by a longer triple at
            # every static site, so only the aggregate must be > 0.
            assert sum(
                row["sites"] for row in target["superinstructions"]
            ) > 0
            for row in target["superinstructions"]:
                assert row["dispatches_saved_per_execution"] == (
                    row["length"] - 1
                )

    def test_text_report(self, power_file, capsys):
        assert main([
            "opt", "--superinstructions", power_file, "--goal", "power",
            "--sig", "DS", "--static", "5", "--dynamic", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert ";; opt: ok" in out
        assert "dispatches:" in out
        assert "differential: ok" in out

    def test_plain_file_needs_dynamics(self, power_file, capsys):
        assert main(["opt", "--superinstructions", power_file]) == 2
        assert "--dynamic" in capsys.readouterr().err

    def test_plain_file_with_dynamics(self, tmp_path, capsys):
        import json

        f = tmp_path / "sq.scm"
        f.write_text("(define (main d) (* (+ d 1) (+ d 1)))")
        assert main([
            "opt", "--superinstructions", str(f), "--dynamic", "6",
            "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        (target,) = report["targets"].values()
        assert target["differential"]["fused"] == "49"


class TestProfileEmptyRun:
    def test_repeat_zero_json_exits_zero(self, power_file, capsys):
        import json

        assert main([
            "profile", power_file, "--goal", "power", "--sig", "DS",
            "--static", "4", "--dynamic", "3", "--repeat", "0", "--json",
        ]) == 0
        (profile,) = json.loads(capsys.readouterr().out).values()
        assert profile["calls"] == 0
        assert profile["total_instructions"] == 0
        assert profile["opcodes"] == {}
        assert profile["templates"] == {}

    def test_repeat_zero_text_renders_none_sections(self, power_file, capsys):
        assert main([
            "profile", power_file, "--goal", "power", "--sig", "DS",
            "--static", "4", "--dynamic", "3", "--repeat", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "(not run)" in out
        assert out.count("(none)") == 3


class TestErrorPaths:
    """User mistakes exit non-zero with a message — never a traceback."""

    def test_missing_input_file(self, capsys):
        assert main(["run", "/nonexistent/nope.scm"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_unparsable_source(self, tmp_path, capsys):
        f = tmp_path / "bad.scm"
        f.write_text("(define (f x) (+ x 1)")  # unbalanced
        assert main(["run", str(f)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_bad_dif_strategy_is_a_usage_error(self, power_file, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(
                [
                    "specialize", power_file, "--goal", "power",
                    "--sig", "DS", "--dif-strategy", "bogus",
                ]
            )
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "Traceback" not in err

    def test_bad_signature(self, power_file, capsys):
        assert main(
            ["specialize", power_file, "--goal", "power", "--sig", "XY"]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_wrong_goal_name(self, power_file, capsys):
        assert main(["run", power_file, "--goal", "nope"]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_sig_arity_mismatch(self, power_file, capsys):
        assert main(
            ["specialize", power_file, "--goal", "power", "--sig", "SDS"]
        ) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_malformed_datum_argument(self, power_file, capsys):
        assert main(
            ["run", power_file, "(1 2", "--goal", "power"]
        ) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestImageLsErrors:
    def test_missing_store_dir_is_exit_1_with_message(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such-store")
        assert main(["image", "ls", "--store", missing]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
        # and the command did not invent an empty store on disk
        assert not (tmp_path / "no-such-store").exists()

    def test_store_path_that_is_a_file(self, tmp_path, capsys):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("")
        assert main(["image", "ls", "--store", str(bogus)]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestServeCommands:
    def test_loadgen_in_process_json(self, tmp_path, capsys):
        import json

        code = main(
            [
                "loadgen", "--clients", "2", "--requests", "4",
                "--workload", "lazy",
                "--store", str(tmp_path / "store"), "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["ok"] == 8
        assert report["errors"] == {}
        assert report["protocol_errors"] == 0
        assert report["coalescing"]["coalesced"] is True
        lazy = report["workloads"]["lazy"]
        assert lazy["provenance"].get("miss", 0) == 1
        assert lazy["cold_ms"]["n"] == 2
        assert lazy["warm_ms"]["n"] == 6

    def test_loadgen_text_report(self, capsys):
        code = main(
            ["loadgen", "--clients", "2", "--requests", "2",
             "--workload", "mixwell"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "loadgen: 2 client(s) x 2 request(s)" in out
        assert "coalescing:" in out

    def test_loadgen_rejects_unknown_workload_mix(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["loadgen", "--workload", "nope"])
        assert exc_info.value.code == 2
