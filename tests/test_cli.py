"""Tests for the command-line driver."""

import pytest

from repro.__main__ import main

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


@pytest.fixture()
def power_file(tmp_path):
    f = tmp_path / "power.scm"
    f.write_text(POWER)
    return str(f)


class TestRunCommands:
    def test_run(self, power_file, capsys):
        assert main(["run", power_file, "2", "10", "--goal", "power"]) == 0
        assert capsys.readouterr().out.strip() == "1024"

    def test_interp(self, power_file, capsys):
        assert main(["interp", power_file, "3", "3", "--goal", "power"]) == 0
        assert capsys.readouterr().out.strip() == "27"

    def test_run_with_list_argument(self, tmp_path, capsys):
        f = tmp_path / "rev.scm"
        f.write_text("(define (main xs) (reverse xs))")
        assert main(["run", str(f), "(1 2 3)"]) == 0
        assert capsys.readouterr().out.strip() == "(3 2 1)"

    def test_run_with_prelude(self, tmp_path, capsys):
        f = tmp_path / "m.scm"
        f.write_text("(define (main xs) (map1 add1 xs))")
        assert main(["run", str(f), "(1 2)", "--prelude"]) == 0
        assert capsys.readouterr().out.strip() == "(2 3)"


class TestSpecializeCommands:
    def test_specialize_prints_residual(self, power_file, capsys):
        code = main(
            [
                "specialize", power_file, "--goal", "power",
                "--sig", "DS", "--static", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "define" in out
        assert "*" in out

    def test_rtcg_runs_generated_code(self, power_file, capsys):
        code = main(
            [
                "rtcg", power_file, "--goal", "power", "--sig", "DS",
                "--static", "5", "--dynamic", "2",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "32"

    def test_rtcg_disassemble(self, power_file, capsys):
        main(
            [
                "rtcg", power_file, "--goal", "power", "--sig", "DS",
                "--static", "2", "--dynamic", "3", "--disassemble",
            ]
        )
        captured = capsys.readouterr()
        assert "PRIM" in captured.err
        assert captured.out.strip() == "9"

    def test_rtcg_join_strategy(self, tmp_path, capsys):
        f = tmp_path / "c.scm"
        f.write_text("(define (f d) (+ (if (zero? d) 1 2) 10))")
        main(
            [
                "rtcg", str(f), "--sig", "D", "--dynamic", "0",
                "--dif-strategy", "join",
            ]
        )
        assert capsys.readouterr().out.strip() == "11"

    def test_stats_reports_cache_counters(self, power_file, capsys):
        code = main(
            [
                "stats", power_file, "--goal", "power", "--sig", "DS",
                "--static", "5", "--repeat", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cold generation" in out
        assert "cached application" in out
        assert "3 hit(s), 1 miss(es)" in out

    def test_stats_source_backend(self, power_file, capsys):
        assert main(
            [
                "stats", power_file, "--goal", "power", "--sig", "DS",
                "--static", "3", "--backend", "source",
            ]
        ) == 0
        assert "backend:             source" in capsys.readouterr().out

    def test_annotate(self, power_file, capsys):
        assert main(
            ["annotate", power_file, "--goal", "power", "--sig", "DS"]
        ) == 0
        out = capsys.readouterr().out
        assert "lift" in out
        assert "[DS]" in out

    def test_memo_hint(self, power_file, capsys):
        main(
            [
                "specialize", power_file, "--goal", "power",
                "--sig", "DS", "--static", "2", "--memo", "power",
            ]
        )
        out = capsys.readouterr().out
        # Memoized: several residual definitions.
        assert out.count("(define") == 3


class TestCombinatorsCommand:
    def test_prints_module(self, capsys):
        assert main(["combinators"]) == 0
        out = capsys.readouterr().out
        assert "def make_residual_if" in out
        assert "make_label()" in out


class TestStaticAnalysisCommands:
    def test_lint_clean_bytecode_only(self, power_file, capsys):
        assert main(["lint", power_file, "--goal", "power"]) == 0
        out = capsys.readouterr().out
        assert "bytecode clean" in out

    def test_lint_with_signature(self, power_file, capsys):
        assert main(
            ["lint", power_file, "--goal", "power", "--sig", "DS"]
        ) == 0
        out = capsys.readouterr().out
        assert "signature and bytecode clean" in out

    def test_disasm_prints_templates(self, power_file, capsys):
        assert main(["disasm", power_file, "--goal", "power"]) == 0
        out = capsys.readouterr().out
        assert "template power" in out
        assert "JUMP_IF_FALSE" in out
        # Jump targets get block labels.
        assert "-> L0" in out
        assert "L0:" in out

    def test_disasm_verify_reports_ok(self, power_file, capsys):
        assert main(
            ["disasm", power_file, "--goal", "power", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified ok" in out

    def test_disasm_stock_compiler(self, power_file, capsys):
        assert main(
            ["disasm", power_file, "--goal", "power",
             "--compiler", "stock"]
        ) == 0
        assert "template power" in capsys.readouterr().out

    def test_run_no_verify(self, power_file, capsys):
        assert main(
            ["run", power_file, "2", "5", "--goal", "power", "--no-verify"]
        ) == 0
        assert capsys.readouterr().out.strip() == "32"

    def test_rtcg_no_verify(self, power_file, capsys):
        assert main(
            [
                "rtcg", power_file, "--goal", "power", "--sig", "DS",
                "--static", "3", "--dynamic", "2", "--no-verify",
            ]
        ) == 0
        assert capsys.readouterr().out.strip() == "8"
