"""Tests for the specializer: the PE equation and residual-code discipline.

The central correctness property (§3):

    [[p-gen]] s-inp = p_s-inp   and   [[p_s-inp]] d-inp = [[p]] s-inp d-inp
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anf import is_anf_program
from repro.interp import run_program
from repro.lang import parse_program
from repro.pe import (
    SourceBackend,
    SpecializationError,
    Specializer,
    analyze,
    specialize,
)
from repro.runtime.values import datum_to_value, scheme_equal, value_to_datum
from repro.sexp import sym


def residual_source(src, signature, static_args, goal=None, **kw):
    program = parse_program(src, goal=goal)
    res = analyze(program, signature, **kw)
    return program, specialize(res.annotated, static_args)


def check_pe_equation(src, signature, static_args, dynamic_args, goal=None, **kw):
    """interp(residual(p, s), d) == interp(p, s ++ d), in signature order."""
    program, rp = residual_source(src, signature, static_args, goal=goal, **kw)
    # Reassemble the full argument list in parameter order.
    s_iter, d_iter = iter(static_args), iter(dynamic_args)
    full = [next(s_iter) if ch == "S" else next(d_iter) for ch in signature]
    expected = run_program(program, full)
    actual = rp.run(dynamic_args)
    assert scheme_equal(actual, expected), f"{actual!r} != {expected!r}"
    return rp


POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


class TestPowerClassic:
    def test_power_static_exponent(self):
        rp = check_pe_equation(POWER, "DS", [5], [3])
        # Full unfolding: a single residual definition, no residual calls.
        assert len(rp.program.defs) == 1

    def test_power_zero(self):
        check_pe_equation(POWER, "DS", [0], [7])

    def test_power_static_base(self):
        # x static, n dynamic: the recursion is dynamic, so the residual
        # program keeps a (specialized) loop.
        rp = check_pe_equation(POWER, "SD", [2], [8])
        assert rp.run([8]) == 256

    def test_power_all_dynamic(self):
        rp = check_pe_equation(POWER, "DD", [], [3, 4])
        assert rp.run([3, 4]) == 81

    def test_power_all_static(self):
        rp = check_pe_equation(POWER, "DS", [10], [2])
        assert rp.run([2]) == 1024

    @given(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=-9, max_value=9),
    )
    @settings(max_examples=25)
    def test_power_pe_equation_random(self, n, x):
        check_pe_equation(POWER, "DS", [n], [x])


class TestResidualDiscipline:
    def test_residual_is_anf(self):
        _, rp = residual_source(POWER, "DS", [6])
        assert is_anf_program(rp.program)

    def test_residual_anf_under_dynamic_recursion(self):
        _, rp = residual_source(POWER, "SD", [3])
        assert is_anf_program(rp.program)

    def test_dynamic_loop_residual_has_tail_call(self):
        src = "(define (loop n acc) (if (zero? n) acc (loop (- n 1) (+ acc n))))"
        _, rp = residual_source(src, "DD", [])
        from repro.lang.ast import App, walk

        body = rp.program.goal_def().body
        # The recursive call must be a tail call (a bare App in tail
        # position), not let-wrapped — otherwise deep loops blow the stack.
        tail_apps = [n for n in walk(body) if isinstance(n, App)]
        assert tail_apps
        assert rp.run([200000, 0]) == 200000 * 200001 // 2

    def test_static_data_inlined(self):
        src = """
        (define (lookup k alist)
          (if (eq? k (caar alist)) (car (cdar alist)) (lookup k (cdr alist))))
        (define (main k table extra) (+ (lookup k table) extra))
        """
        _, rp = residual_source(src, "SSD", [sym("b"), datum_to_value(
            [[sym("a"), 1], [sym("b"), 22], [sym("c"), 3]]
        )])
        # Everything static folds away: residual adds 22 directly.
        assert rp.run([100]) == 122
        from repro.lang.ast import Const, walk

        consts = [
            n.value
            for n in walk(rp.program.goal_def().body)
            if isinstance(n, Const)
        ]
        assert 22 in consts


class TestMemoization:
    COUNTDOWN = """
    (define (count n sink)
      (if (zero? sink) (count2 n sink) (count2 n (- sink 1))))
    (define (count2 n sink)
      (if (zero? n) sink (count (- n 1) sink)))
    """

    def test_shared_specializations_are_reused(self):
        # Mutual recursion without structural descent on the static side
        # would loop forever without memoization.
        src = """
        (define (even? n d) (if (zero? n) (car d) (odd? (- n 1) d)))
        (define (odd? n d) (if (zero? n) (cadr d) (even? (- n 1) d)))
        (define (main n d) (even? n d))
        """
        program = parse_program(src, goal="main")
        res = analyze(program, "SD")
        rp = specialize(res.annotated, [6])
        both = datum_to_value([True, False])
        assert rp.run([both]) is True

    def test_memo_hit_count(self):
        src = """
        (define (f sel d) (if sel (g d) (g d)))
        (define (g d) (h d))
        (define (h d) (+ d (f #t d)))
        """
        program = parse_program(src, goal="f")
        res = analyze(program, "SD")
        spec = Specializer(res.annotated, SourceBackend(), max_residual_defs=50)
        with pytest.raises(SpecializationError):
            # f/g/h recurse dynamically with the same static key forever →
            # the memo *should* make this terminate quickly... it does: the
            # second call to f with sel=#t hits the memo.  No error.
            # (kept as a regression: if memoization broke, the def limit
            # fires; with working memoization we never get here)
            spec.run([True])
            raise SpecializationError("memoization works")

    def test_divergent_static_growth_is_caught(self):
        # The static argument grows at every memoized call: the classic
        # non-terminating specialization.  The resource bound must fire.
        src = """
        (define (grow n d) (if (zero? d) n (grow (+ n 1) d)))
        """
        program = parse_program(src, goal="grow")
        res = analyze(program, "SD", memo_hints=["grow"])
        spec = Specializer(res.annotated, SourceBackend(), max_residual_defs=40)
        with pytest.raises(SpecializationError, match="exceeded"):
            spec.run([0])


class TestHigherOrder:
    def test_static_closures_unfold(self):
        src = """
        (define (compose f g x) (f (g x)))
        (define (main x)
          (compose (lambda (a) (* a a)) (lambda (b) (+ b 1)) x))
        """
        rp = check_pe_equation(src, "D", [], [4], goal="main")
        # Both lambdas were static: no closures in the residual program.
        from repro.lang.ast import Lam, walk

        assert not any(
            isinstance(n, Lam)
            for d in rp.program.defs
            for n in walk(d.body)
        )

    def test_dynamic_closures_residualized(self):
        src = """
        (define (main n)
          (let ((f (if (zero? n) (lambda (x) (+ x 1)) (lambda (x) (* x 2)))))
            (f 10)))
        """
        rp = check_pe_equation(src, "D", [], [0], goal="main")
        assert rp.run([3]) == 20
        assert rp.run([0]) == 11

    def test_closure_over_static_value(self):
        # A dynamic lambda capturing a static value: the static value is
        # specialized into the body.
        src = """
        (define (adder k) (lambda (x) (+ x k)))
        (define (main k d) (let ((f (adder k))) (f d)))
        """
        program = parse_program(src, goal="main")
        res = analyze(program, "SD")
        rp = specialize(res.annotated, [42])
        assert rp.run([8]) == 50


class TestListProcessing:
    APPEND = """
    (define (app xs ys) (if (null? xs) ys (cons (car xs) (app (cdr xs) ys))))
    """

    def test_append_static_first(self):
        program = parse_program(self.APPEND, goal="app")
        res = analyze(program, "SD")
        rp = specialize(res.annotated, [datum_to_value([1, 2, 3])])
        out = rp.run([datum_to_value([4, 5])])
        assert value_to_datum(out) == [1, 2, 3, 4, 5]

    def test_append_fully_unfolds(self):
        program = parse_program(self.APPEND, goal="app")
        res = analyze(program, "SD")
        rp = specialize(res.annotated, [datum_to_value([1, 2, 3])])
        # Structural descent on xs: one residual definition, no calls.
        assert len(rp.program.defs) == 1

    @given(st.lists(st.integers(-50, 50), max_size=6),
           st.lists(st.integers(-50, 50), max_size=6))
    @settings(max_examples=25)
    def test_append_pe_equation(self, xs, ys):
        program = parse_program(self.APPEND, goal="app")
        res = analyze(program, "SD")
        rp = specialize(res.annotated, [datum_to_value(xs)])
        assert value_to_datum(rp.run([datum_to_value(ys)])) == xs + ys


class TestErrors:
    def test_spec_time_error_reported(self):
        src = "(define (f d) (+ (car '()) d))"
        program = parse_program(src, goal="f")
        res = analyze(program, "D")
        with pytest.raises(SpecializationError, match="car"):
            specialize(res.annotated, [])

    def test_wrong_static_arg_count(self):
        program = parse_program(POWER, goal="power")
        res = analyze(program, "DS")
        with pytest.raises(SpecializationError, match="static arguments"):
            specialize(res.annotated, [1, 2])

    def test_impure_prims_always_residualized(self, capsys):
        src = '(define (f d) (let ((x (display "hi"))) d))'
        program = parse_program(src, goal="f")
        res = analyze(program, "D")
        rp = specialize(res.annotated, [])
        # Nothing printed at specialization time...
        assert capsys.readouterr().out == ""
        rp.run([1])
        # ...but printed at run time.
        assert capsys.readouterr().out == "hi"
