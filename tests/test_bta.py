"""Tests for the binding-time analysis."""

import pytest
from hypothesis import given, settings

from repro.lang import DApp, DIf, DLam, DPrim, Lam, Lift, MemoCall, parse_program, walk
from repro.pe import BindingTime, BindingTimeError, analyze, parse_signature
from repro.pe.bta import prepare
from repro.sexp import sym
from tests.strategies import guarded_descent_programs

S, D = BindingTime.STATIC, BindingTime.DYNAMIC


def ann_body(src, signature, goal=None, **kw):
    program = parse_program(src, goal=goal)
    res = analyze(program, signature, **kw)
    return res, res.annotated.goal_def().body


class TestSignature:
    def test_parse_signature(self):
        assert parse_signature("SD s d") == (S, D, S, D)

    def test_bad_signature_char(self):
        with pytest.raises(ValueError):
            parse_signature("SX")

    def test_arity_mismatch(self):
        with pytest.raises(BindingTimeError, match="arity"):
            analyze(parse_program("(define (f x) x)"), "SS")


class TestBasicDivisions:
    def test_fully_static_prim_stays_static(self):
        res, body = ann_body("(define (f s d) (+ d (* s s)))", "SD")
        # (* s s) static → appears under a lift; (+ d ...) dynamic.
        assert any(isinstance(n, Lift) for n in walk(body))
        assert any(isinstance(n, DPrim) and n.op is sym("+") for n in walk(body))
        assert not any(isinstance(n, DPrim) and n.op is sym("*") for n in walk(body))

    def test_dynamic_poisons_upward(self):
        res, body = ann_body("(define (f s d) (* s (+ s d)))", "SD")
        assert any(isinstance(n, DPrim) and n.op is sym("*") for n in walk(body))

    def test_static_conditional_selected_at_spec_time(self):
        res, body = ann_body("(define (f s d) (if (zero? s) d (+ d 1)))", "SD")
        assert not any(isinstance(n, DIf) for n in walk(body))

    def test_dynamic_conditional(self):
        res, body = ann_body("(define (f s d) (if (zero? d) s (+ s 1)))", "SD")
        assert any(isinstance(n, DIf) for n in walk(body))

    def test_impure_prim_always_dynamic(self):
        res, body = ann_body('(define (f s) (display s))', "S")
        assert any(isinstance(n, DPrim) for n in walk(body))

    def test_all_static_program_needs_lift_at_residual_boundary(self):
        # The goal is a specialization point: its (static) result must be
        # lifted into the residual code.
        res, body = ann_body("(define (f s) (* s 2))", "S")
        assert any(isinstance(n, Lift) for n in walk(body))


class TestCallAnnotations:
    def test_nonrecursive_call_unfolds(self):
        src = """
        (define (helper x) (+ x 1))
        (define (main d) (helper d))
        """
        res, body = ann_body(src, "D", goal="main")
        assert not any(isinstance(n, MemoCall) for n in walk(body))

    def test_structural_descent_unfolds(self):
        src = """
        (define (len xs d) (if (null? xs) d (len (cdr xs) (+ d 1))))
        """
        res, body = ann_body(src, "SD", goal="len")
        assert not any(isinstance(n, MemoCall) for n in walk(body))

    def test_numeric_descent_unfolds(self):
        res, body = ann_body(
            "(define (p x n) (if (zero? n) 1 (* x (p x (- n 1)))))", "DS"
        )
        assert not any(isinstance(n, MemoCall) for n in walk(body))

    def test_non_descending_recursion_memoizes(self):
        src = """
        (define (iter s d) (if (zero? d) s (iter s (- d 1))))
        """
        res, body = ann_body(src, "SD", goal="iter")
        assert any(isinstance(n, MemoCall) for n in walk(body))

    def test_memo_hint_forces_memoization(self):
        src = "(define (p x n) (if (zero? n) 1 (* x (p x (- n 1)))))"
        res, body = ann_body(src, "DS", memo_hints=["p"])
        assert any(isinstance(n, MemoCall) for n in walk(body))

    def test_unfold_hint_forces_unfolding(self):
        src = "(define (iter s d) (if (zero? d) s (iter s (- d 1))))"
        res, body = ann_body(src, "SD", goal="iter", unfold_hints=["iter"])
        assert not any(isinstance(n, MemoCall) for n in walk(body))

    def test_residual_set(self):
        src = """
        (define (f s d) (g s d))
        (define (g s d) (if (zero? d) s (f s (- d 1))))
        """
        res, _ = ann_body(src, "SD", goal="f")
        names = {n.name.split("%")[0] for n in res.residual_defs}
        assert "f" in names  # the goal is always residual


class TestHigherOrderBTA:
    def test_static_lambda_stays_static(self):
        res, body = ann_body(
            "(define (f d) ((lambda (x) (+ x d)) 1))", "D"
        )
        assert not any(isinstance(n, DLam) for n in walk(body))

    def test_lambda_forced_dynamic_by_context(self):
        # The lambda is consed into a dynamic structure: it must become
        # a residual lambda.
        res, body = ann_body(
            "(define (f d) (cons (lambda (x) (+ x 1)) d))", "D"
        )
        assert any(isinstance(n, DLam) for n in walk(body))

    def test_application_of_dynamic_closure(self):
        src = """
        (define (f d)
          (let ((g (if (zero? d) (lambda (x) x) (lambda (x) (+ x 1)))))
            (g d)))
        """
        res, body = ann_body(src, "D")
        assert any(isinstance(n, DApp) for n in walk(body))
        assert sum(isinstance(n, DLam) for n in walk(body)) == 2

    def test_static_closure_in_static_container_unfolds(self):
        # A closure in a *static* container comes back out statically and
        # unfolds: no residual lambda is needed.
        src = """
        (define (f d)
          (let ((env (cons (lambda () d) '())))
            (let ((th (car env)))
              (th))))
        """
        res, body = ann_body(src, "D")
        assert not any(isinstance(n, DLam) for n in walk(body))
        assert not any(isinstance(n, DApp) for n in walk(body))

    def test_closure_through_dynamic_container_forced(self):
        # The LAZY pattern: a closure stored in a *dynamic* structure must
        # be residualized, and its extraction applied dynamically.
        src = """
        (define (f d)
          (let ((env (cons (lambda () (+ d 1)) d)))
            (let ((th (car env)))
              (th))))
        """
        res, body = ann_body(src, "D")
        assert any(isinstance(n, DLam) for n in walk(body))
        assert any(isinstance(n, DApp) for n in walk(body))


class TestPrepare:
    def test_unique_names(self):
        from repro.lang import Lam, Let

        program = parse_program(
            """
            (define (f x) (let ((y x)) ((lambda (y) y) y)))
            (define (g x) (let ((y x)) y))
            """
        )
        prepared = prepare(program)
        names = []
        for d in prepared.defs:
            names.extend(d.params)
            for node in walk(d.body):
                if isinstance(node, Lam):
                    names.extend(node.params)
                elif isinstance(node, Let):
                    names.append(node.var)
        assert len(names) == len(set(names))

    def test_eta_expansion_of_escaping_defs(self):
        from repro.lang import App

        program = parse_program(
            """
            (define (inc x) (+ x 1))
            (define (main d) (cons inc d))
            """
        )
        prepared = prepare(program)
        main = prepared.lookup(prepared.goal)
        # The bare `inc` reference became (lambda (x) (inc x)).
        lams = [n for n in walk(main.body) if isinstance(n, Lam)]
        assert len(lams) == 1
        assert isinstance(lams[0].body, App)

    def test_semantics_preserved_by_preparation(self):
        from repro.interp import run_program
        from repro.lang import eliminate_assignments

        src = """
        (define (f a)
          (let loop ((i 0) (acc 1))
            (if (= i a) acc (loop (+ i 1) (* acc 2)))))
        """
        program = parse_program(src, goal="f")
        prepared = prepare(program)
        baseline = eliminate_assignments(program)
        assert run_program(prepared, [10]) == run_program(baseline, [10]) == 1024


class TestDivisionReporting:
    def test_division_contains_goal_params(self):
        program = parse_program("(define (f s d) (+ s d))")
        res = analyze(program, "SD")
        bts = sorted(
            (name.name.split("%")[0], bt) for name, bt in res.division.items()
        )
        assert ("d", D) in bts
        assert ("s", S) in bts


class TestPolyvariantProperties:
    """Properties relating the polyvariant division to the mono join."""

    @staticmethod
    def _assert_pointwise_refinement(program, signature):
        mono = analyze(program, signature, bta="mono")
        poly = analyze(program, signature, bta="poly")
        mono_bts = {d.name: d.bts for d in mono.annotated.defs}
        for d in poly.annotated.defs:
            baseline = mono_bts.get(poly.origin_of(d.name))
            if baseline is None:
                continue  # unreachable under mono: nothing to refine
            for pb, mb in zip(d.bts, baseline):
                # Refinement: a variant may recover S where mono joined
                # to D, but must never dynamize what mono kept static.
                assert not (pb is D and mb is S), (
                    d.name, d.bts, baseline,
                )
        return mono, poly

    @given(entry=guarded_descent_programs())
    @settings(max_examples=30, deadline=None)
    def test_poly_is_a_pointwise_refinement_of_mono(self, entry):
        src, sig, goal, _static_args = entry
        program = parse_program(src, goal=goal)
        self._assert_pointwise_refinement(program, sig)

    def test_refinement_is_strict_on_a_shared_helper(self):
        # One dynamic call site must not poison the static uses of h:
        # poly splits h into an SS and a DS variant where mono joins
        # the first parameter to D for every caller.
        src = """
        (define (main s d) (+ (h s s) (h d s)))
        (define (h a b) (+ a b))
        """
        program = parse_program(src, goal="main")
        mono, poly = self._assert_pointwise_refinement(program, "SD")
        origins = {}
        for d in poly.annotated.defs:
            origins.setdefault(str(poly.origin_of(d.name)), []).append(d)
        assert len(origins.get("h", ())) >= 2
        mono_h = next(
            d for d in mono.annotated.defs if str(d.name) == "h"
        )
        assert mono_h.bts == (D, S)
        assert any(d.bts == (S, S) for d in origins["h"])

    def test_workload_residuals_agree_across_divisions(self):
        # Differential property over the workload corpus: the mono and
        # poly divisions must produce semantically equal residual
        # programs, on both dispatch loops (plain and counting).
        from repro.lang.prims import write_value
        from repro.rtcg import GeneratingExtension
        from repro.runtime.values import datum_to_value
        from repro.vm.profile import VMProfile
        from repro.workloads import (
            LAZY_SIGNATURE,
            MIXWELL_SIGNATURE,
            lazy_interpreter,
            lazy_primes_program,
            mixwell_interpreter,
            mixwell_tm_program,
        )

        corpus = [
            (
                "mixwell", mixwell_interpreter(), MIXWELL_SIGNATURE,
                [mixwell_tm_program()],
                [datum_to_value([1, 0, 1, 1, 0, 1])],
            ),
            (
                "lazy", lazy_interpreter(), LAZY_SIGNATURE,
                [lazy_primes_program()], [4],
            ),
        ]
        for name, program, sig, statics, dynamics in corpus:
            outcomes = {}
            for mode in ("mono", "poly"):
                gen = GeneratingExtension(program, sig, bta=mode)
                rp = gen.to_object_code(statics, dif_strategy="join")
                outcomes[mode] = (
                    write_value(rp.run(list(dynamics))),
                    write_value(rp.run_profiled(list(dynamics), VMProfile())),
                )
            assert outcomes["mono"] == outcomes["poly"], name


class TestMonoLiftInfelicity:
    """Pinned regression: the monovariant join's lift infelicity.

    Ackermann under an all-static signature with the goal itself as the
    specialization point: the goal is residual, so its branches lift —
    and under the monovariant join the lifted (now dynamic) recursion
    result flows back into ``ack``'s static parameter, a congruence
    dead-end the seed BTA reported as a BindingTimeError.  The
    polyvariant BTA splits a value variant for the inner calls and
    folds the whole tower to a constant instead.
    """

    @staticmethod
    def _ackermann():
        from tests.corpus_termination import SAFE

        return next(e for e in SAFE if e.name == "ackermann")

    def test_mono_reproduces_the_binding_time_error(self):
        from repro.rtcg import GeneratingExtension

        entry = self._ackermann()
        gen = GeneratingExtension(
            entry.source, entry.signature, goal=entry.goal, bta="mono"
        )
        with pytest.raises(
            BindingTimeError, match="dynamic argument to static"
        ):
            gen.to_source([2, 3])

    def test_poly_folds_ackermann_to_a_constant(self):
        from repro.rtcg import GeneratingExtension

        entry = self._ackermann()
        gen = GeneratingExtension(
            entry.source, entry.signature, goal=entry.goal
        )
        rp = gen.to_source([2, 3])
        assert rp.run([]) == 9
