"""Tests for the compiled generating extensions (cogen path)."""

import pytest

from repro.compiler import ObjectCodeBackend
from repro.lang import Gensym, parse_program, unparse_program
from repro.pe import SourceBackend, Specializer, analyze
from repro.pe.cogen import compile_generating_extension
from repro.pe.errors import SpecializationError
from repro.sexp import write


def residual_text(rp):
    return "\n".join(write(d) for d in unparse_program(rp.program))


def both_paths(src, signature, static_args, goal=None, **kw):
    """Residual programs from the specializer and the compiled extension."""
    program = parse_program(src, goal=goal)
    res = analyze(program, signature, **kw)
    rp_spec = Specializer(
        res.annotated, SourceBackend(), name_gensym=Gensym("f")
    ).run(static_args)
    extension = compile_generating_extension(res.annotated)
    rp_cogen = extension.generate(static_args, name_gensym=Gensym("f"))
    return rp_spec, rp_cogen, extension


POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


class TestCogenEquivalence:
    def test_power_identical_residual(self):
        rp_spec, rp_cogen, _ = both_paths(POWER, "DS", [6])
        assert residual_text(rp_spec) == residual_text(rp_cogen)

    def test_dynamic_recursion_identical(self):
        rp_spec, rp_cogen, _ = both_paths(POWER, "SD", [3])
        assert residual_text(rp_spec) == residual_text(rp_cogen)

    def test_higher_order_identical(self):
        src = """
        (define (make-add d) (lambda (x) (+ x d)))
        (define (main d e) (let ((f (make-add d))) (f (f e))))
        """
        rp_spec, rp_cogen, _ = both_paths(src, "DD", [], goal="main")
        assert residual_text(rp_spec) == residual_text(rp_cogen)

    def test_mixwell_identical(self):
        from repro.workloads import (
            MIXWELL_GOAL,
            MIXWELL_SIGNATURE,
            MIXWELL_SOURCE,
            mixwell_tm_program,
        )

        rp_spec, rp_cogen, _ = both_paths(
            MIXWELL_SOURCE,
            MIXWELL_SIGNATURE,
            [mixwell_tm_program()],
            goal=MIXWELL_GOAL,
        )
        assert residual_text(rp_spec) == residual_text(rp_cogen)

    def test_lazy_identical(self):
        from repro.workloads import (
            LAZY_GOAL,
            LAZY_SIGNATURE,
            LAZY_SOURCE,
            lazy_primes_program,
        )

        rp_spec, rp_cogen, _ = both_paths(
            LAZY_SOURCE,
            LAZY_SIGNATURE,
            [lazy_primes_program()],
            goal=LAZY_GOAL,
        )
        assert residual_text(rp_spec) == residual_text(rp_cogen)


class TestCogenReuse:
    def test_one_extension_many_inputs(self):
        program = parse_program(POWER, goal="power")
        res = analyze(program, "DS")
        extension = compile_generating_extension(res.annotated)
        for n in (0, 1, 5, 9):
            rp = extension.generate([n])
            assert rp.run([2]) == 2**n

    def test_extension_with_object_backend(self):
        program = parse_program(POWER, goal="power")
        res = analyze(program, "DS")
        extension = compile_generating_extension(res.annotated)
        rp = extension.generate([8], backend=ObjectCodeBackend())
        assert rp.machine is not None
        assert rp.run([2]) == 256

    def test_callable_shorthand(self):
        program = parse_program(POWER, goal="power")
        res = analyze(program, "DS")
        extension = compile_generating_extension(res.annotated)
        assert extension([3]).run([5]) == 125


class TestCogenErrors:
    def test_static_arg_count(self):
        program = parse_program(POWER, goal="power")
        res = analyze(program, "DS")
        extension = compile_generating_extension(res.annotated)
        with pytest.raises(SpecializationError, match="static arguments"):
            extension.generate([1, 2])

    def test_divergence_bound(self):
        src = "(define (grow n d) (if (zero? d) n (grow (+ n 1) d)))"
        program = parse_program(src, goal="grow")
        res = analyze(program, "SD", memo_hints=["grow"])
        extension = compile_generating_extension(res.annotated)
        with pytest.raises(SpecializationError, match="exceeded"):
            extension.generate([0], max_residual_defs=30)

    def test_generation_time_error(self):
        src = "(define (f d) (+ (car '()) d))"
        program = parse_program(src, goal="f")
        res = analyze(program, "D")
        extension = compile_generating_extension(res.annotated)
        with pytest.raises(SpecializationError, match="car"):
            extension.generate([])


class TestRtcgCogenIntegration:
    def test_gen_ext_compiled_accessor(self):
        from repro.rtcg import make_generating_extension

        gen = make_generating_extension(POWER, "DS", goal="power")
        compiled = gen.compiled()
        rp = compiled.generate([4])
        assert rp.run([3]) == 81
