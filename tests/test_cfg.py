"""Tests for the shared basic-block CFG builder (:mod:`repro.vm.cfg`).

The builder is the substrate both the verifier's dataflow pass and the
bytecode optimizer stand on, so its invariants are pinned directly:
leader identification, block boundaries, successor/predecessor edges,
reachability, and the fall-through-past-the-end marker.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.compiler.program import compile_program
from repro.lang.parser import parse_program
from repro.vm.cfg import TERMINATOR_OPS, build_cfg, leaders
from repro.vm.instructions import Op
from repro.vm.template import Template
from tests.strategies import arith_exprs, higher_order_exprs


def _tmpl(code, literals=(), arity=0, nlocals=0, name="cfg-test"):
    return Template(
        code=tuple(code),
        literals=tuple(literals),
        arity=arity,
        nlocals=nlocals,
        name=name,
    )


# A diamond: entry branches, both arms join at a RETURN block.
#
#     0: CONST 0
#     1: JUMP_IF_FALSE 4
#     2: CONST 0
#     3: JUMP 5
#     4: CONST 1
#     5: RETURN
DIAMOND = _tmpl(
    [
        (Op.CONST, 0),
        (Op.JUMP_IF_FALSE, 4),
        (Op.CONST, 0),
        (Op.JUMP, 5),
        (Op.CONST, 1),
        (Op.RETURN,),
    ],
    literals=(True, False),
)


class TestLeaders:
    def test_entry_is_always_a_leader(self):
        assert leaders([(Op.CONST, 0), (Op.RETURN,)]) == [0]

    def test_branch_targets_and_fallthroughs_are_leaders(self):
        assert leaders(DIAMOND.code) == [0, 2, 4, 5]

    def test_pc_after_terminator_is_a_leader_even_when_unreachable(self):
        code = [(Op.CONST, 0), (Op.RETURN,), (Op.CONST, 0), (Op.RETURN,)]
        assert leaders(code) == [0, 2]

    def test_no_leader_after_final_terminator(self):
        assert leaders([(Op.RETURN,)]) == [0]


class TestBuildCfg:
    def test_diamond_blocks_and_edges(self):
        cfg = build_cfg(DIAMOND)
        assert cfg.order == (0, 2, 4, 5)
        assert cfg.entry == 0
        # Fall-through edge first, matching machine order.
        assert cfg.blocks[0].succs == (2, 4)
        assert cfg.blocks[2].succs == (5,)
        assert cfg.blocks[4].succs == (5,)
        assert cfg.blocks[5].succs == ()

    def test_block_instruction_slices_cover_the_code(self):
        cfg = build_cfg(DIAMOND)
        flat = []
        for leader in cfg.order:
            block = cfg.blocks[leader]
            assert block.start == leader
            assert block.end == leader + len(block.instrs)
            flat.extend(block.instrs)
        assert tuple(flat) == DIAMOND.code

    def test_predecessors_invert_successors(self):
        cfg = build_cfg(DIAMOND)
        preds = cfg.predecessors()
        assert preds[0] == ()
        assert preds[2] == (0,)
        assert preds[4] == (0,)
        assert preds[5] == (2, 4)

    def test_reachable_excludes_orphan_blocks(self):
        code = [(Op.CONST, 0), (Op.RETURN,), (Op.CONST, 0), (Op.RETURN,)]
        cfg = build_cfg(_tmpl(code, literals=(1,)))
        assert set(cfg.order) == {0, 2}
        assert cfg.reachable() == {0}

    def test_terminator_property(self):
        cfg = build_cfg(DIAMOND)
        assert cfg.blocks[0].terminator == (Op.JUMP_IF_FALSE, 4)
        assert cfg.blocks[5].terminator == (Op.RETURN,)

    def test_falls_off_end_is_marked_not_rejected(self):
        cfg = build_cfg([(Op.CONST, 0), (Op.PUSH,)])
        assert cfg.blocks[0].falls_off
        assert cfg.blocks[0].succs == ()

    def test_conditional_at_end_falls_off(self):
        cfg = build_cfg([(Op.CONST, 0), (Op.JUMP_IF_FALSE, 0)])
        assert cfg.blocks[0].falls_off
        assert cfg.blocks[0].succs == (0,)

    def test_int_opcodes_are_normalized(self):
        # Image-decoded code carries raw ints; the builder must still
        # classify terminators.
        code = tuple(
            (int(instr[0]), *instr[1:]) for instr in DIAMOND.code
        )
        cfg = build_cfg(code)
        assert cfg.order == (0, 2, 4, 5)
        assert cfg.blocks[0].succs == (2, 4)

    def test_empty_code_is_an_error(self):
        with pytest.raises(ValueError):
            build_cfg(())


class TestCfgOnCompilerOutput:
    @given(expr=arith_exprs())
    @settings(max_examples=25, deadline=None)
    def test_blocks_partition_code(self, expr):
        program = parse_program(f"(define (main) {expr})")
        compiled = compile_program(program, compiler="auto", optimize=False)
        for template in compiled.templates.values():
            cfg = build_cfg(template)
            flat = []
            for leader in cfg.order:
                flat.extend(cfg.blocks[leader].instrs)
            assert tuple(flat) == template.code

    @given(expr=higher_order_exprs())
    @settings(max_examples=25, deadline=None)
    def test_every_edge_lands_on_a_leader(self, expr):
        program = parse_program(f"(define (main) {expr})")
        compiled = compile_program(program, compiler="auto", optimize=False)
        for template in compiled.templates.values():
            cfg = build_cfg(template)
            preds = cfg.predecessors()
            for leader in cfg.order:
                for succ in cfg.blocks[leader].succs:
                    assert succ in cfg.blocks
                    assert leader in preds[succ]
                terminator = cfg.blocks[leader].terminator
                op = terminator[0]
                if op not in TERMINATOR_OPS and not cfg.blocks[leader].falls_off:
                    # Straight-line block: single fall-through edge.
                    assert cfg.blocks[leader].succs == (cfg.blocks[leader].end,)
