"""Tests for the core-form parser and the unparser."""

import pytest
from hypothesis import given

from repro.lang import (
    App,
    Const,
    If,
    Lam,
    Let,
    ParseError,
    Prim,
    SetBang,
    Var,
    free_variables,
    parse_core,
    parse_expr,
    parse_program,
    unparse,
)
from repro.sexp import read, sym, write
from tests.strategies import arith_exprs, higher_order_exprs


class TestParseCore:
    def test_constant(self):
        assert parse_expr("42") == Const(42)

    def test_quote_freezes_lists(self):
        e = parse_expr("'(1 (2) 3)")
        assert e == Const((1, (2,), 3))

    def test_variable(self):
        assert parse_expr("x") == Var(sym("x"))

    def test_lambda(self):
        e = parse_expr("(lambda (x y) x)")
        assert isinstance(e, Lam)
        assert e.params == (sym("x"), sym("y"))

    def test_duplicate_params_rejected(self):
        with pytest.raises(ParseError):
            parse_core(read("(lambda (x x) x)"))

    def test_if(self):
        e = parse_expr("(if #t 1 2)")
        assert isinstance(e, If)

    def test_primitive_call(self):
        e = parse_expr("(+ 1 2)")
        assert isinstance(e, Prim)
        assert e.op is sym("+")

    def test_primitive_arity_checked_at_parse_time(self):
        with pytest.raises(Exception):
            parse_expr("(car)")

    def test_application(self):
        e = parse_expr("(f 1 2)")
        assert isinstance(e, App)
        assert e.fn == Var(sym("f"))

    def test_shadowed_primitive_is_application(self):
        e = parse_expr("(lambda (car) (car 1))")
        assert isinstance(e, Lam)
        assert isinstance(e.body, App)

    def test_shadowed_special_form_name(self):
        # A parameter named `if` shadows the special form in call position.
        e = parse_core(read("(lambda (if) (if 1 2 3))"))
        assert isinstance(e.body, App)

    def test_set_bang(self):
        e = parse_core(read("(set! x 1)"))
        assert e == SetBang(sym("x"), Const(1))

    def test_empty_application_rejected(self):
        with pytest.raises(ParseError):
            parse_core(read("()"))

    def test_core_let_shape(self):
        e = parse_core(read("(let (x 1) x)"))
        assert e == Let(sym("x"), Const(1), Var(sym("x")))


class TestParseProgram:
    def test_goal_defaults_to_main(self):
        p = parse_program("(define (f) 1) (define (main) 2) (define (g) 3)")
        assert p.goal is sym("main")

    def test_goal_defaults_to_last(self):
        p = parse_program("(define (f) 1) (define (g) 2)")
        assert p.goal is sym("g")

    def test_explicit_goal(self):
        p = parse_program("(define (f) 1) (define (g) 2)", goal="f")
        assert p.goal is sym("f")

    def test_define_value_form_for_lambdas(self):
        p = parse_program("(define double (lambda (x) (* 2 x)))")
        assert p.defs[0].params == (sym("x"),)

    def test_missing_goal_rejected(self):
        with pytest.raises(ValueError):
            parse_program("(define (f) 1)", goal="nope")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_lookup(self):
        p = parse_program("(define (f x) x)")
        assert p.lookup(sym("f")).params == (sym("x"),)


class TestUnparseRoundTrip:
    def test_simple(self):
        e = parse_expr("(let ((x (+ 1 2))) (if (< x 3) x (* x x)))")
        assert parse_expr(write(unparse(e))) == e

    def test_lambda(self):
        e = parse_expr("(lambda (f x) (f (f x)))")
        assert parse_expr(write(unparse(e))) == e

    def test_quoted_constants(self):
        e = parse_expr("'(a 1 (b))")
        assert parse_expr(write(unparse(e))) == e

    @given(arith_exprs())
    def test_arith_roundtrip(self, source):
        e = parse_expr(source)
        assert parse_expr(write(unparse(e))) == e

    @given(higher_order_exprs())
    def test_higher_order_roundtrip(self, source):
        e = parse_expr(source)
        assert parse_expr(write(unparse(e))) == e


class TestFreeVariables:
    def test_closed(self):
        assert free_variables(parse_expr("(lambda (x) x)")) == frozenset()

    def test_open(self):
        assert free_variables(parse_expr("(lambda (x) (+ x y))")) == {sym("y")}

    def test_let_scoping(self):
        e = parse_core(read("(let (x y) (+ x z))"))
        assert free_variables(e) == {sym("y"), sym("z")}

    def test_let_rhs_not_in_scope(self):
        e = parse_core(read("(let (x x) x)"))
        assert free_variables(e) == {sym("x")}

    def test_shadowing(self):
        e = parse_expr("(lambda (x) ((lambda (x) x) x))")
        assert free_variables(e) == frozenset()
