"""End-to-end tests for the specialization service.

Every test here runs a real :class:`SpecializationServer` on an
ephemeral port and talks to it over real sockets — the full path a
production tenant takes: frame codec, dispatcher, admission control,
per-tenant extension registry, residual caches, typed error frames.

The load-bearing properties:

* correct residual results over the wire (the service computes what
  the in-process pipeline computes),
* tenant isolation — two tenants asking for the same specialization
  get separate extensions and separate caches,
* request coalescing — 8 clients stampeding one cold key cause exactly
  one specializer run (single-flight),
* forbid-mode admission — an untrusted tenant submitting a known
  diverging program gets a typed ``ADMISSION_DENIED`` frame, while a
  trusted tenant is let through to hit the runtime budget backstop,
* graceful degradation — quota exhaustion and garbage bytes produce
  typed, retryable-annotated error frames, never a hung connection or
  a traceback on the wire.
"""

import socket
import threading

import pytest

from repro.serve import SpecializationServer, TenantQuota
from repro.serve.client import ServiceError, SpecializationClient
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    recv_frame,
    specialize_request,
)

POWER = "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))"

# The "count-up" diverging program from the analyzer corpus: the static
# counter grows at every memoized call, so specialization enumerates
# one residual variant per natural number.
COUNT_UP = "(define (f s d) (if (null? d) s (f (+ s 1) (cdr d))))"


@pytest.fixture()
def server(tmp_path):
    with SpecializationServer(
        port=0, store_dir=tmp_path / "store", trusted=frozenset({"insider"})
    ) as s:
        yield s


def client_for(server, **kwargs):
    return SpecializationClient("127.0.0.1", server.port, **kwargs)


class TestRoundTrip:
    def test_specialize_returns_correct_value_and_provenance(self, server):
        with client_for(server) as c:
            r1 = c.specialize(
                POWER, "SD", ["10"], dynamics=["2"], tenant="t1",
                want_residual=True,
            )
            assert r1["type"] == "result"
            assert r1["v"] == PROTOCOL_VERSION
            assert r1["value"] == "1024"
            assert r1["provenance"] == "miss"
            assert "power" in r1["residual"]
            assert r1["stages"]  # per-stage timings travel with the result
            r2 = c.specialize(POWER, "SD", ["10"], dynamics=["3"], tenant="t1")
            assert r2["value"] == "59049"
            assert r2["provenance"] == "l1"

    def test_source_backend_over_the_wire(self, server):
        with client_for(server) as c:
            r = c.specialize(
                POWER, "SD", ["3"], tenant="t1", backend="source",
                want_residual=True, dynamics=["5"],
            )
            assert r["value"] == "125"
            assert "(define" in r["residual"]

    def test_connection_reuse_many_requests(self, server):
        with client_for(server) as c:
            for n in range(2, 8):
                r = c.specialize(POWER, "SD", [str(n)], dynamics=["2"])
                assert r["value"] == str(2 ** n)

    def test_ping_and_stats(self, server):
        with client_for(server) as c:
            assert c.ping()
            c.specialize(POWER, "SD", ["4"], tenant="t1")
            stats = c.stats()
            assert stats["port"] == server.port
            assert stats["counters"]["requests"] >= 2
            assert "t1" in stats["tenants"]

    def test_probe_reports_warmth_without_generating(self, server):
        with client_for(server) as c:
            cold = c.probe(POWER, "SD", ["6"], tenant="t1")
            assert cold == {
                "type": "probed", "v": PROTOCOL_VERSION, "tenant": "t1",
                "extension": False, "cached": False,
            }
            c.specialize(POWER, "SD", ["6"], tenant="t1")
            warm = c.probe(POWER, "SD", ["6"], tenant="t1")
            assert warm["extension"] is True
            assert warm["cached"] is True
            # probing never built anything: one specializer run total
            runs = server.stats()["tenants"]["t1"]["extensions"]
            assert sum(e["cache"]["specializer_runs"] for e in runs) == 1


class TestTenantIsolationAndCoalescing:
    def test_eight_clients_two_tenants(self, server):
        """8 concurrent clients, 2 tenants, one cold key per tenant:
        every client gets the right answer, each tenant's cache is its
        own (one specializer run *per tenant*, not one total and not
        eight)."""
        results: list[tuple[str, str, str]] = []
        errors: list[Exception] = []
        barrier = threading.Barrier(8)

        def worker(i: int) -> None:
            tenant = "alpha" if i % 2 == 0 else "beta"
            try:
                with client_for(server, timeout=120) as c:
                    barrier.wait(timeout=60)
                    r = c.specialize(
                        POWER, "SD", ["10"], dynamics=["2"], tenant=tenant
                    )
                    results.append((tenant, r["value"], r["provenance"]))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(results) == 8
        assert all(value == "1024" for _, value, _ in results)

        stats = server.stats()["tenants"]
        assert set(stats) == {"alpha", "beta"}
        for tenant in ("alpha", "beta"):
            runs = sum(
                e["cache"]["specializer_runs"]
                for e in stats[tenant]["extensions"]
            )
            # Coalesced: 4 clients stampeded this tenant's cold key and
            # exactly one ran the specializer (isolation: one run per
            # tenant means the tenants did NOT share a cache either).
            assert runs == 1, f"{tenant}: {runs} specializer runs"

    def test_tenant_stores_are_sharded_on_disk(self, server, tmp_path):
        with client_for(server) as c:
            c.specialize(POWER, "SD", ["9"], tenant="alpha")
            c.specialize(POWER, "SD", ["9"], tenant="beta")
        shards = [p for p in (tmp_path / "store").iterdir() if p.is_dir()]
        assert len(shards) == 2  # one L2 store per tenant, not shared


class TestAdmission:
    def test_untrusted_diverger_gets_typed_denial(self, server):
        with client_for(server) as c:
            with pytest.raises(ServiceError) as exc_info:
                c.specialize(COUNT_UP, "SD", ["0"], tenant="outsider")
            err = exc_info.value
            assert err.code == "ADMISSION_DENIED"
            assert not err.retryable
            assert err.details["findings"]
            assert any(
                "infinite-specialization" in f for f in err.details["findings"]
            )
            # the connection survives a denial
            assert c.ping()

    def test_denial_verdicts_are_cached_by_digest(self, server):
        with client_for(server) as c:
            for _ in range(3):
                with pytest.raises(ServiceError):
                    c.specialize(COUNT_UP, "SD", ["0"], tenant="outsider")
            admission = c.stats()["admission"]
            assert admission["denied"] == 3
            assert admission["analyzed"] == 1  # analyzed once, cached after

    def test_trusted_tenant_reaches_the_runtime_backstop(self, server):
        with client_for(server) as c:
            with pytest.raises(ServiceError) as exc_info:
                c.specialize(
                    COUNT_UP, "SD", ["0"], tenant="insider",
                    max_unfold_depth=64,
                )
            err = exc_info.value
            assert err.code == "BUDGET_EXCEEDED"
            assert not err.retryable
            # which budget trips first depends on the divergence shape
            # (count-up exhausts the residual-def budget before the
            # unfold depth); what matters is that it is typed and named
            assert err.details["budget"].startswith("max_")
            assert err.details["limit"] >= 1

    def test_trusted_tenant_succeeds_on_safe_programs(self, server):
        with client_for(server) as c:
            r = c.specialize(
                POWER, "SD", ["4"], dynamics=["3"], tenant="insider"
            )
            assert r["value"] == "81"
            assert "admission_warnings" not in r or not r["admission_warnings"]


class TestGracefulDegradation:
    def test_garbage_bytes_get_a_bad_frame_error(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
            response = recv_frame(sock)
            assert response["type"] == "error"
            assert response["code"] == "BAD_FRAME"

    def test_bad_request_fields_get_typed_errors(self, server):
        with client_for(server) as c:
            with pytest.raises(ServiceError) as exc_info:
                c.request({"type": "specialize", "v": PROTOCOL_VERSION})
            assert exc_info.value.code == "BAD_REQUEST"
            with pytest.raises(ServiceError) as exc_info:
                c.request({"type": "no-such-thing", "v": PROTOCOL_VERSION})
            assert exc_info.value.code == "BAD_REQUEST"

    def test_parse_error_is_typed_not_a_traceback(self, server):
        with client_for(server) as c:
            with pytest.raises(ServiceError) as exc_info:
                c.specialize("(define (f s d) (((", "SD", ["1"])
            assert exc_info.value.code == "PARSE_ERROR"

    def test_in_flight_quota_returns_retryable_busy(self, tmp_path):
        quota = TenantQuota(max_in_flight=0)
        with SpecializationServer(port=0, quota=quota) as server:
            with client_for(server) as c:
                with pytest.raises(ServiceError) as exc_info:
                    c.specialize(POWER, "SD", ["2"], tenant="t")
                assert exc_info.value.code == "BUSY"
                assert exc_info.value.retryable

    def test_connection_pool_overflow_returns_retryable_busy(self):
        with SpecializationServer(port=0, max_connections=1) as server:
            with client_for(server) as c1:
                assert c1.ping()  # occupies the single slot
                with client_for(server) as c2:
                    with pytest.raises((ServiceError, ConnectionError)) as ei:
                        c2.ping()
                    if isinstance(ei.value, ServiceError):
                        assert ei.value.code == "BUSY"
                        assert ei.value.retryable

    def test_oversized_frame_does_not_hang_the_connection(self):
        with SpecializationServer(port=0, max_frame_bytes=1024) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port)
            ) as sock:
                frame = encode_frame(
                    specialize_request("(define (f d) d)" * 200, "D")
                )
                assert len(frame) > 1024
                try:
                    sock.sendall(frame)
                    response = recv_frame(sock)
                except (ConnectionError, BrokenPipeError):
                    return  # server hung up mid-send: also not a hang
                assert response is None or response["code"] == "BAD_FRAME"


class TestServerLifecycle:
    def test_stop_is_idempotent_and_releases_the_port(self):
        server = SpecializationServer(port=0)
        server.start()
        port = server.port
        server.stop()
        server.stop()
        # the port is free again (REUSEADDR skips TIME_WAIT remnants of
        # the server's own accepted connections)
        with socket.socket() as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", port))

    def test_stats_before_any_request(self, server):
        stats = server.stats()
        assert stats["counters"]["requests"] == 0
        assert stats["tenants"] == {}
