"""Tests for the prelude library, on every execution path."""


from repro.compiler import compile_program
from repro.interp import run_program
from repro.lang.prelude import prelude_definitions, with_prelude
from repro.runtime.values import datum_to_value, value_to_datum
from repro.sexp import sym


def run_all(source, goal, args):
    """Run through the interpreter, ANF compiler, and stock compiler."""
    program = with_prelude(source, goal=goal)
    results = [run_program(program, args)]
    for mode in ("auto", "stock"):
        results.append(compile_program(program, compiler=mode).run(args))
    first = results[0]
    from repro.runtime.values import scheme_equal

    for r in results[1:]:
        assert scheme_equal(r, first)
    return first


class TestListOperations:
    def test_map1(self):
        out = run_all(
            "(define (main xs) (map1 (lambda (x) (* x x)) xs))",
            "main",
            [datum_to_value([1, 2, 3])],
        )
        assert value_to_datum(out) == [1, 4, 9]

    def test_filter1(self):
        out = run_all(
            "(define (main xs) (filter1 even? xs))",
            "main",
            [datum_to_value([1, 2, 3, 4, 5, 6])],
        )
        assert value_to_datum(out) == [2, 4, 6]

    def test_foldr_builds_right(self):
        out = run_all(
            "(define (main xs) (foldr cons '() xs))",
            "main",
            [datum_to_value([1, 2, 3])],
        )
        assert value_to_datum(out) == [1, 2, 3]

    def test_foldl_accumulates_left(self):
        out = run_all(
            "(define (main xs) (foldl - 0 xs))",
            "main",
            [datum_to_value([1, 2, 3])],
        )
        assert out == -6

    def test_quantifiers(self):
        src = "(define (main xs) (list (for-all? positive? xs) (exists? even? xs)))"
        out = run_all(src, "main", [datum_to_value([1, 3, 4])])
        assert value_to_datum(out) == [True, True]

    def test_iota_take_drop(self):
        src = "(define (main n) (list (take (iota n) 3) (drop (iota n) 3)))"
        out = run_all(src, "main", [5])
        assert value_to_datum(out) == [[0, 1, 2], [3, 4]]

    def test_zip2(self):
        src = "(define (main xs ys) (zip2 xs ys))"
        out = run_all(
            src, "main", [datum_to_value([1, 2]), datum_to_value([sym("a"), sym("b"), sym("c")])]
        )
        assert value_to_datum(out) == [[1, sym("a")], [2, sym("b")]]

    def test_assoc_update(self):
        src = """
        (define (main)
          (assoc-update 'b 99 '((a 1) (b 2) (c 3))))
        """
        out = run_all(src, "main", [])
        assert value_to_datum(out) == [
            [sym("a"), 1],
            [sym("b"), 99],
            [sym("c"), 3],
        ]

    def test_sort_by(self):
        src = "(define (main xs) (sort-by xs <))"
        out = run_all(src, "main", [datum_to_value([5, 1, 4, 2, 3])])
        assert value_to_datum(out) == [1, 2, 3, 4, 5]


class TestShadowing:
    def test_program_definition_replaces_prelude(self):
        src = """
        (define (map1 f xs) 'mine)
        (define (main xs) (map1 car xs))
        """
        program = with_prelude(src, goal="main")
        # Exactly one map1 definition survives.
        assert sum(1 for d in program.defs if d.name is sym("map1")) == 1
        assert run_program(program, [datum_to_value([])]) is sym("mine")

    def test_prelude_definitions_cached_copy(self):
        a = prelude_definitions()
        b = prelude_definitions()
        assert a == b
        a.append("mutation")
        assert prelude_definitions() != a


class TestPreludeWithPE:
    def test_specializing_prelude_code(self):
        from repro.pe import analyze, specialize

        src = """
        (define (main ys)
          (foldr + 0 (map1 (lambda (p) (* p p)) ys)))
        """
        program = with_prelude(src, goal="main")
        res = analyze(program, "D")
        rp = specialize(res.annotated, [])
        assert rp.run([datum_to_value([1, 2, 3])]) == 14

    def test_static_list_fully_computed(self):
        from repro.pe import analyze, specialize

        src = """
        (define (main xs extra)
          (+ (foldl + 0 (take xs 3)) extra))
        """
        program = with_prelude(src, goal="main")
        res = analyze(program, "SD")
        rp = specialize(res.annotated, [datum_to_value([10, 20, 30, 40])])
        # take/foldl over the static list evaluate away entirely.
        assert rp.run([7]) == 67
        assert len(rp.program.defs) == 1
