"""Tests for the bytecode verifier (:mod:`repro.vm.verify`).

Two halves: every template the three backends produce — stock compiler,
ANF compiler, fused cogen backend — passes verification on random
programs (property tests); and hand-corrupted templates are rejected
with the right :class:`ViolationKind` anchored to the right offset
(mutation tests).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.compiler.fusion import ObjectCodeBackend
from repro.compiler.program import compile_program
from repro.lang.parser import parse_program
from repro.lang.prims import PRIMITIVES
from repro.rtcg import make_generating_extension
from repro.sexp.datum import sym
from repro.vm.instructions import Op
from repro.vm.template import Template
from repro.vm.verify import (
    VerificationError,
    ViolationKind,
    check_template,
    verify_template,
)
from tests.strategies import arith_exprs, higher_order_exprs, list_exprs


def _assert_all_verify(templates):
    for template in templates:
        report = check_template(template)
        assert report.ok, report.pretty()


# -- property tests: compiler output always verifies --------------------------


class TestCompiledOutputVerifies:
    @given(expr=arith_exprs())
    @settings(max_examples=40, deadline=None)
    def test_stock_compiler_arith(self, expr):
        program = parse_program(f"(define (main) {expr})")
        compiled = compile_program(program, compiler="stock", verify=False)
        _assert_all_verify(compiled.templates.values())

    @given(expr=higher_order_exprs())
    @settings(max_examples=40, deadline=None)
    def test_stock_compiler_higher_order(self, expr):
        program = parse_program(f"(define (main) {expr})")
        compiled = compile_program(program, compiler="stock", verify=False)
        _assert_all_verify(compiled.templates.values())

    @given(expr=list_exprs())
    @settings(max_examples=40, deadline=None)
    def test_anf_compiler_lists(self, expr):
        program = parse_program(f"(define (main) {expr})")
        compiled = compile_program(program, compiler="auto", verify=False)
        _assert_all_verify(compiled.templates.values())

    @given(expr=higher_order_exprs())
    @settings(max_examples=40, deadline=None)
    def test_anf_compiler_higher_order(self, expr):
        program = parse_program(f"(define (main) {expr})")
        compiled = compile_program(program, compiler="auto", verify=False)
        _assert_all_verify(compiled.templates.values())

    @given(expr=arith_exprs(env=("d",)))
    @settings(max_examples=30, deadline=None)
    def test_fused_cogen_backend(self, expr):
        """RTCG output of the fused system verifies at generation time."""
        gen = make_generating_extension(
            f"(define (main d) {expr})", "D", goal="main"
        )
        backend = ObjectCodeBackend(verify=False)
        gen.compiled().generate([], backend=backend)
        _assert_all_verify(backend.templates.values())

    def test_workload_interpreters_verify(self):
        from repro.workloads import lazy_interpreter, mixwell_interpreter

        for program in (mixwell_interpreter(), lazy_interpreter()):
            for compiler in ("stock", "auto"):
                compiled = compile_program(
                    program, compiler=compiler, verify=False
                )
                _assert_all_verify(compiled.templates.values())


# -- mutation tests: corrupted templates are rejected -------------------------


def _tmpl(code, literals=(), arity=0, nlocals=0, name="mutant"):
    return Template(
        code=tuple(code),
        literals=tuple(literals),
        arity=arity,
        nlocals=nlocals,
        name=name,
    )


def _sole_error(template, kind, pc, closed_count=0):
    """Check the one error has the expected kind and instruction offset."""
    report = check_template(template, closed_count=closed_count)
    assert not report.ok
    kinds = {(v.kind, v.pc) for v in report.errors}
    assert (kind, pc) in kinds, report.pretty()
    return report


class TestMutationsRejected:
    def test_bad_opcode(self):
        t = _tmpl([(999, 0), (Op.RETURN,)])
        _sole_error(t, ViolationKind.BAD_OPCODE, 0)

    def test_bad_operand_count(self):
        t = _tmpl([(Op.CONST,), (Op.RETURN,)], literals=(1,))
        _sole_error(t, ViolationKind.BAD_OPERANDS, 0)

    def test_non_integer_operand(self):
        t = _tmpl([(Op.LOCAL, "zero"), (Op.RETURN,)], nlocals=1)
        _sole_error(t, ViolationKind.BAD_OPERANDS, 0)

    def test_bad_jump_target(self):
        t = _tmpl([(Op.JUMP, 99), (Op.RETURN,)])
        _sole_error(t, ViolationKind.BAD_JUMP_TARGET, 0)

    def test_negative_jump_target(self):
        t = _tmpl([(Op.JUMP_IF_FALSE, -1), (Op.RETURN,)])
        _sole_error(t, ViolationKind.BAD_JUMP_TARGET, 0)

    def test_bad_literal_index(self):
        t = _tmpl([(Op.CONST, 5), (Op.RETURN,)], literals=(1,))
        _sole_error(t, ViolationKind.BAD_LITERAL_INDEX, 0)

    def test_bad_literal_kind_global(self):
        t = _tmpl([(Op.GLOBAL, 0), (Op.RETURN,)], literals=(42,))
        _sole_error(t, ViolationKind.BAD_LITERAL_KIND, 0)

    def test_bad_literal_kind_prim(self):
        t = _tmpl([(Op.PRIM, 0, 0), (Op.RETURN,)], literals=(sym("car"),))
        _sole_error(t, ViolationKind.BAD_LITERAL_KIND, 0)

    def test_bad_local_slot(self):
        t = _tmpl([(Op.LOCAL, 3), (Op.RETURN,)], nlocals=1, arity=1)
        _sole_error(t, ViolationKind.BAD_LOCAL_SLOT, 0)

    def test_bad_setloc_slot(self):
        t = _tmpl([(Op.CONST, 0), (Op.SETLOC, 7), (Op.RETURN,)],
                  literals=(1,), nlocals=2)
        _sole_error(t, ViolationKind.BAD_LOCAL_SLOT, 1)

    def test_bad_closed_index_top_level(self):
        # Top-level templates run with an empty closure environment.
        t = _tmpl([(Op.CLOSED, 0), (Op.RETURN,)])
        _sole_error(t, ViolationKind.BAD_CLOSED_INDEX, 0)

    def test_bad_prim_arity(self):
        zero_p = PRIMITIVES[sym("zero?")]
        t = _tmpl(
            [(Op.CONST, 1), (Op.PUSH,), (Op.CONST, 1), (Op.PUSH,),
             (Op.CONST, 1), (Op.PUSH,), (Op.PRIM, 0, 3), (Op.RETURN,)],
            literals=(zero_p, 0),
        )
        _sole_error(t, ViolationKind.BAD_PRIM_ARITY, 6)

    def test_stack_underflow_call(self):
        t = _tmpl([(Op.CALL, 2), (Op.RETURN,)])
        _sole_error(t, ViolationKind.STACK_UNDERFLOW, 0)

    def test_stack_underflow_prim(self):
        plus = PRIMITIVES[sym("+")]
        t = _tmpl([(Op.PRIM, 0, 2), (Op.RETURN,)], literals=(plus,))
        _sole_error(t, ViolationKind.STACK_UNDERFLOW, 0)

    def test_stack_mismatch_at_join(self):
        t = _tmpl([(Op.JUMP_IF_FALSE, 2), (Op.PUSH,), (Op.RETURN,)])
        report = check_template(t)
        assert any(
            v.kind is ViolationKind.STACK_MISMATCH and v.pc == 2
            for v in report.errors
        ), report.pretty()

    def test_falls_off_end(self):
        t = _tmpl([(Op.PUSH,)])
        _sole_error(t, ViolationKind.FALLS_OFF_END, 0)

    def test_empty_code_vector(self):
        t = _tmpl([])
        report = check_template(t)
        assert any(
            v.kind is ViolationKind.FALLS_OFF_END for v in report.errors
        )

    def test_bad_arity_exceeds_locals(self):
        # Template.__post_init__ now rejects nlocals < arity outright, so
        # forge the mutant behind the constructor's back — the verifier
        # must still catch it (defense in depth against corrupt images).
        t = _tmpl([(Op.RETURN,)], arity=0, nlocals=1)
        object.__setattr__(t, "arity", 2)
        report = check_template(t)
        assert any(
            v.kind is ViolationKind.BAD_ARITY for v in report.errors
        )

    def test_constructor_rejects_short_locals_frame(self):
        with pytest.raises(ValueError, match="nlocals 1 < arity 2"):
            _tmpl([(Op.RETURN,)], arity=2, nlocals=1)

    def test_corrupt_nested_template_found_through_closure(self):
        inner = _tmpl([(Op.CLOSED, 5), (Op.RETURN,)], name="inner")
        outer = _tmpl(
            [(Op.CONST, 0), (Op.PUSH,), (Op.MAKE_CLOSURE, 1, 1),
             (Op.RETURN,)],
            literals=(42, inner),
            name="outer",
        )
        report = check_template(outer)
        assert not report.ok
        v = next(
            v for v in report.errors
            if v.kind is ViolationKind.BAD_CLOSED_INDEX
        )
        assert v.template == "outer.inner"
        assert v.pc == 0


class TestWarnings:
    def test_unreachable_code_is_warning(self):
        t = _tmpl(
            [(Op.CONST, 0), (Op.RETURN,), (Op.PUSH,), (Op.RETURN,)],
            literals=(1,),
        )
        report = check_template(t)
        assert report.ok
        assert any(
            v.kind is ViolationKind.UNREACHABLE_CODE and v.pc == 2
            for v in report.warnings
        )

    def test_leftover_stack_is_warning(self):
        t = _tmpl([(Op.PUSH,), (Op.RETURN,)])
        report = check_template(t)
        assert report.ok
        assert any(
            v.kind is ViolationKind.LEFTOVER_STACK and v.pc == 1
            for v in report.warnings
        )

    def test_warnings_do_not_raise(self):
        t = _tmpl([(Op.PUSH,), (Op.RETURN,)])
        verify_template(t)  # must not raise


class TestVerifyAPI:
    def test_verify_template_raises_with_report(self):
        t = _tmpl([(Op.JUMP, 99), (Op.RETURN,)])
        with pytest.raises(VerificationError) as exc:
            verify_template(t)
        assert "bad-jump-target" in str(exc.value)
        assert not exc.value.report.ok

    def test_report_pretty_includes_disasm_context(self):
        t = _tmpl([(Op.LOCAL, 3), (Op.RETURN,)], nlocals=1, name="f")
        report = check_template(t)
        pretty = report.pretty()
        assert "bad-local-slot" in pretty
        assert "LOCAL 3" in pretty

    def test_good_template_report_is_clean(self):
        program = parse_program(
            "(define (power x n)"
            " (if (zero? n) 1 (* x (power x (- n 1)))))"
        )
        compiled = compile_program(program, verify=False)
        report = check_template(compiled.templates[sym("power")])
        assert report.ok
        assert report.violations == ()

    def test_compile_program_verifies_by_default(self, monkeypatch):
        # Corrupt the compiler's output: compile_program(verify=True)
        # must reject it before a machine ever runs it.
        from repro.compiler import program as program_mod

        program = parse_program("(define (main x) x)")
        good = compile_program(program, verify=False)
        bad = _tmpl([(Op.JUMP, 99), (Op.RETURN,)], name="main")

        class _Broken:
            def __init__(self, *a, **kw):
                pass

            def compile_procedure(self, params, body, name="anonymous"):
                return bad

        monkeypatch.setattr(program_mod, "ANFCompiler", _Broken)
        with pytest.raises(VerificationError):
            compile_program(program, compiler="auto", verify=True)
        # ... and verify=False lets it through untouched.
        assert compile_program(
            program, compiler="auto", verify=False
        ).templates[sym("main")] is bad
        del good
