"""Hypothesis strategies for random Scheme data and programs.

The expression strategies only generate *terminating, error-free* programs:
closed expressions over total primitives, with conditionals and bounded
recursion via a fuel parameter, so differential tests (interpreter vs VM vs
specializer) never hit divergence.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sexp.datum import Char, sym

# -- data ---------------------------------------------------------------------

symbol_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-<>=?*+!",
    min_size=1,
    max_size=8,
).filter(lambda s: not s[0].isdigit() and s not in (".", "+", "-", "..."))

symbols = symbol_names.map(sym)

atoms = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=st.characters(codec="ascii", exclude_characters='"\\\x00'),
            max_size=10),
    symbols,
    st.sampled_from([Char("a"), Char(" "), Char("\n"), Char("z")]),
)

data = st.recursive(
    atoms,
    lambda children: st.lists(children, max_size=5),
    max_leaves=25,
)

# Python-container statics: what a host program may pass as a static
# argument to a generating extension (dicts, sets, tuples, lists of the
# above).  Set members and dict keys stay hashable, as Python requires.
hashable_atoms = st.one_of(
    st.integers(min_value=-(2**20), max_value=2**20),
    st.booleans(),
    st.text(max_size=6),
)

python_statics = st.recursive(
    st.one_of(atoms, st.none()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(hashable_atoms, children, max_size=4),
        st.sets(hashable_atoms, max_size=4),
        st.frozensets(hashable_atoms, max_size=4),
    ),
    max_leaves=20,
)

# -- expressions ----------------------------------------------------------------
# Generated as source text for readability of failure messages.

_INT = st.integers(min_value=-100, max_value=100)


@st.composite
def arith_exprs(draw, depth: int = 3, env: tuple = ()):  # type: ignore[no-untyped-def]
    """Closed, total arithmetic/boolean expressions as source strings."""
    if depth == 0 or draw(st.booleans()):
        if env and draw(st.booleans()):
            return draw(st.sampled_from(env))
        return str(draw(_INT))
    kind = draw(
        st.sampled_from(
            ["+", "-", "*", "if", "let", "cmp", "zero?", "max", "min"]
        )
    )
    sub = lambda: draw(arith_exprs(depth=depth - 1, env=env))  # noqa: E731
    if kind in ("+", "-", "*", "max", "min"):
        return f"({kind} {sub()} {sub()})"
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<", ">", "<=", ">="]))
        return f"(if ({op} {sub()} {sub()}) {sub()} {sub()})"
    if kind == "zero?":
        return f"(if (zero? {sub()}) {sub()} {sub()})"
    if kind == "if":
        return f"(if {draw(st.booleans()) and '#t' or '#f'} {sub()} {sub()})"
    # let
    var = f"x{draw(st.integers(min_value=0, max_value=20))}"
    body = draw(arith_exprs(depth=depth - 1, env=env + (var,)))
    return f"(let (({var} {sub()})) {body})"


@st.composite
def list_exprs(draw, depth: int = 3):  # type: ignore[no-untyped-def]
    """Closed expressions over lists of small integers."""
    if depth == 0:
        items = draw(st.lists(_INT, max_size=4))
        return "(list " + " ".join(str(i) for i in items) + ")"
    kind = draw(st.sampled_from(["cons", "append", "reverse", "cdr-safe", "base"]))
    sub = lambda: draw(list_exprs(depth=depth - 1))  # noqa: E731
    if kind == "cons":
        return f"(cons {draw(_INT)} {sub()})"
    if kind == "append":
        return f"(append {sub()} {sub()})"
    if kind == "reverse":
        return f"(reverse {sub()})"
    if kind == "cdr-safe":
        inner = sub()
        return f"(let ((l {inner})) (if (pair? l) (cdr l) l))"
    items = draw(st.lists(_INT, max_size=4))
    return "(list " + " ".join(str(i) for i in items) + ")"


@st.composite
def higher_order_exprs(draw, depth: int = 3, env: tuple = ()):  # type: ignore[no-untyped-def]
    """Closed expressions with lambdas and applications (always terminating)."""
    if depth == 0:
        if env and draw(st.booleans()):
            return draw(st.sampled_from(env))
        return str(draw(_INT))
    kind = draw(st.sampled_from(["apply1", "apply2", "arith", "let", "base"]))
    if kind == "apply1":
        var = f"a{draw(st.integers(min_value=0, max_value=20))}"
        body = draw(higher_order_exprs(depth=depth - 1, env=env + (var,)))
        arg = draw(higher_order_exprs(depth=depth - 1, env=env))
        return f"((lambda ({var}) {body}) {arg})"
    if kind == "apply2":
        v1 = f"b{draw(st.integers(min_value=0, max_value=20))}"
        v2 = f"c{draw(st.integers(min_value=0, max_value=20))}"
        body = draw(higher_order_exprs(depth=depth - 1, env=env + (v1, v2)))
        a1 = draw(higher_order_exprs(depth=depth - 1, env=env))
        a2 = draw(higher_order_exprs(depth=depth - 1, env=env))
        return f"((lambda ({v1} {v2}) {body}) {a1} {a2})"
    if kind == "arith":
        op = draw(st.sampled_from(["+", "-", "*"]))
        a = draw(higher_order_exprs(depth=depth - 1, env=env))
        b = draw(higher_order_exprs(depth=depth - 1, env=env))
        return f"({op} {a} {b})"
    if kind == "let":
        var = f"d{draw(st.integers(min_value=0, max_value=20))}"
        rhs = draw(higher_order_exprs(depth=depth - 1, env=env))
        body = draw(higher_order_exprs(depth=depth - 1, env=env + (var,)))
        return f"(let (({var} {rhs})) {body})"
    if env and draw(st.booleans()):
        return draw(st.sampled_from(env))
    return str(draw(_INT))
