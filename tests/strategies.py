"""Hypothesis strategies for random Scheme data and programs.

The expression strategies only generate *terminating, error-free* programs:
closed expressions over total primitives, with conditionals and bounded
recursion via a fuel parameter, so differential tests (interpreter vs VM vs
specializer) never hit divergence.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.pe.annprog import AnnDef, AnnotatedProgram, BindingTime
from repro.sexp.datum import Char, sym

_S = BindingTime.STATIC
_D = BindingTime.DYNAMIC

# -- data ---------------------------------------------------------------------

symbol_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-<>=?*+!",
    min_size=1,
    max_size=8,
).filter(lambda s: not s[0].isdigit() and s not in (".", "+", "-", "..."))

symbols = symbol_names.map(sym)

atoms = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=st.characters(codec="ascii", exclude_characters='"\\\x00'),
            max_size=10),
    symbols,
    st.sampled_from([Char("a"), Char(" "), Char("\n"), Char("z")]),
)

data = st.recursive(
    atoms,
    lambda children: st.lists(children, max_size=5),
    max_leaves=25,
)

# Python-container statics: what a host program may pass as a static
# argument to a generating extension (dicts, sets, tuples, lists of the
# above).  Set members and dict keys stay hashable, as Python requires.
hashable_atoms = st.one_of(
    st.integers(min_value=-(2**20), max_value=2**20),
    st.booleans(),
    st.text(max_size=6),
)

python_statics = st.recursive(
    st.one_of(atoms, st.none()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(hashable_atoms, children, max_size=4),
        st.sets(hashable_atoms, max_size=4),
        st.frozensets(hashable_atoms, max_size=4),
    ),
    max_leaves=20,
)

# -- expressions ----------------------------------------------------------------
# Generated as source text for readability of failure messages.

_INT = st.integers(min_value=-100, max_value=100)


@st.composite
def arith_exprs(draw, depth: int = 3, env: tuple = ()):  # type: ignore[no-untyped-def]
    """Closed, total arithmetic/boolean expressions as source strings."""
    if depth == 0 or draw(st.booleans()):
        if env and draw(st.booleans()):
            return draw(st.sampled_from(env))
        return str(draw(_INT))
    kind = draw(
        st.sampled_from(
            ["+", "-", "*", "if", "let", "cmp", "zero?", "max", "min"]
        )
    )
    sub = lambda: draw(arith_exprs(depth=depth - 1, env=env))  # noqa: E731
    if kind in ("+", "-", "*", "max", "min"):
        return f"({kind} {sub()} {sub()})"
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<", ">", "<=", ">="]))
        return f"(if ({op} {sub()} {sub()}) {sub()} {sub()})"
    if kind == "zero?":
        return f"(if (zero? {sub()}) {sub()} {sub()})"
    if kind == "if":
        return f"(if {draw(st.booleans()) and '#t' or '#f'} {sub()} {sub()})"
    # let
    var = f"x{draw(st.integers(min_value=0, max_value=20))}"
    body = draw(arith_exprs(depth=depth - 1, env=env + (var,)))
    return f"(let (({var} {sub()})) {body})"


@st.composite
def list_exprs(draw, depth: int = 3):  # type: ignore[no-untyped-def]
    """Closed expressions over lists of small integers."""
    if depth == 0:
        items = draw(st.lists(_INT, max_size=4))
        return "(list " + " ".join(str(i) for i in items) + ")"
    kind = draw(st.sampled_from(["cons", "append", "reverse", "cdr-safe", "base"]))
    sub = lambda: draw(list_exprs(depth=depth - 1))  # noqa: E731
    if kind == "cons":
        return f"(cons {draw(_INT)} {sub()})"
    if kind == "append":
        return f"(append {sub()} {sub()})"
    if kind == "reverse":
        return f"(reverse {sub()})"
    if kind == "cdr-safe":
        inner = sub()
        return f"(let ((l {inner})) (if (pair? l) (cdr l) l))"
    items = draw(st.lists(_INT, max_size=4))
    return "(list " + " ".join(str(i) for i in items) + ")"


@st.composite
def higher_order_exprs(draw, depth: int = 3, env: tuple = ()):  # type: ignore[no-untyped-def]
    """Closed expressions with lambdas and applications (always terminating)."""
    if depth == 0:
        if env and draw(st.booleans()):
            return draw(st.sampled_from(env))
        return str(draw(_INT))
    kind = draw(st.sampled_from(["apply1", "apply2", "arith", "let", "base"]))
    if kind == "apply1":
        var = f"a{draw(st.integers(min_value=0, max_value=20))}"
        body = draw(higher_order_exprs(depth=depth - 1, env=env + (var,)))
        arg = draw(higher_order_exprs(depth=depth - 1, env=env))
        return f"((lambda ({var}) {body}) {arg})"
    if kind == "apply2":
        v1 = f"b{draw(st.integers(min_value=0, max_value=20))}"
        v2 = f"c{draw(st.integers(min_value=0, max_value=20))}"
        body = draw(higher_order_exprs(depth=depth - 1, env=env + (v1, v2)))
        a1 = draw(higher_order_exprs(depth=depth - 1, env=env))
        a2 = draw(higher_order_exprs(depth=depth - 1, env=env))
        return f"((lambda ({v1} {v2}) {body}) {a1} {a2})"
    if kind == "arith":
        op = draw(st.sampled_from(["+", "-", "*"]))
        a = draw(higher_order_exprs(depth=depth - 1, env=env))
        b = draw(higher_order_exprs(depth=depth - 1, env=env))
        return f"({op} {a} {b})"
    if kind == "let":
        var = f"d{draw(st.integers(min_value=0, max_value=20))}"
        rhs = draw(higher_order_exprs(depth=depth - 1, env=env))
        body = draw(higher_order_exprs(depth=depth - 1, env=env + (var,)))
        return f"(let (({var} {rhs})) {body})"
    if env and draw(st.booleans()):
        return draw(st.sampled_from(env))
    return str(draw(_INT))


# -- annotated programs ---------------------------------------------------------
# Hand-built Annotated Core Scheme, for tests that corrupt or inspect
# annotations directly (congruence linter, safety analyzer).


def annotated_program(
    body, params=("s", "d"), bts=(_S, _D), residual=True, extra=()
):
    """A one-definition annotated program ``main`` around ``body``."""
    main = AnnDef(
        name=sym("main"),
        params=tuple(sym(p) for p in params),
        bts=tuple(bts),
        body=body,
        residual=residual,
    )
    return AnnotatedProgram(defs=(main,) + tuple(extra), goal=sym("main"))


# -- specialization-safe programs -----------------------------------------------
# Source programs whose static recursion descends under a static guard —
# the shapes the specialization-safety analyzer must accept at ``forbid``
# level, paired with a static input on which specialization terminates.


@st.composite
def guarded_descent_programs(draw):  # type: ignore[no-untyped-def]
    """``(source, signature, goal, static_args)`` of a provably safe
    recursive program; ``static_args`` are Python values."""
    n = draw(st.integers(min_value=0, max_value=5))
    items = draw(st.lists(_INT, max_size=5))
    filler = draw(st.sampled_from(["(cons 1 d)", "(cdr d)", "d"]))
    shape = draw(
        st.sampled_from(
            ["numeric", "list", "mutual", "accumulator", "dynamic-control"]
        )
    )
    if shape == "numeric":
        # Static countdown under a static guard.
        src = f"(define (f s d) (if (zero? s) d (f (- s 1) {filler})))"
        return src, "SD", "f", (n,)
    if shape == "list":
        # Structural descent under a static guard.
        src = f"(define (f s d) (if (null? s) d (f (cdr s) {filler})))"
        return src, "SD", "f", (items,)
    if shape == "mutual":
        # The descent spans a two-function cycle.
        src = (
            f"(define (f s d) (if (null? s) d (g (cdr s) {filler})))"
            "(define (g s d) (if (null? s) d (f (cdr s) d)))"
        )
        return src, "SD", "f", (items,)
    if shape == "accumulator":
        # One static grows, paid for by the other's descent.
        src = (
            "(define (f s acc d)"
            " (if (null? s) (cons acc d)"
            " (f (cdr s) (cons (car s) acc) d)))"
        )
        return src, "SSD", "f", (items, [])
    # dynamic-control: the recursive call sits under a *dynamic*
    # conditional, so suppression does not apply — the analyzer must
    # prove the static parameter's structural descent.
    src = (
        "(define (f s d)"
        " (if (null? s) 0 (if (null? d) 1 (f (cdr s) (cdr d)))))"
    )
    return src, "SD", "f", (items,)
