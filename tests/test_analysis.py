"""Tests for the specialization-safety analyzer (:mod:`repro.analysis`).

The load-bearing property is exact separation of the labelled corpus
(:mod:`tests.corpus_termination`): every diverging program is flagged
with a cycle-path diagnostic, every safe look-alike analyzes clean.  On
top of that: the runtime budgets catch the divergers the analysis was
turned off for, the ``analyze=`` modes of :class:`GeneratingExtension`
behave, the ``pe.check`` facade and the CLI are wired through, and a
hypothesis property ties the two layers together — programs accepted
at ``forbid`` level actually reach a fixpoint within the budgets.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.analysis import (
    AnalysisKind,
    UnsafeProgramError,
    analyze_bta,
    analyze_program,
    build_callgraph,
)
from repro.analysis.fixpoint import Solver, saturate
from repro.pe.bta import analyze
from repro.pe.errors import BudgetExceeded, SpecializationError
from repro.lang.parser import parse_program
from repro.rtcg import GeneratingExtension
from repro.runtime.values import datum_to_value
from repro.sexp import read

from tests.corpus_termination import DIVERGING, SAFE
from tests.strategies import guarded_descent_programs


def _report(entry):
    return analyze_program(
        entry.source,
        entry.signature,
        goal=entry.goal,
        memo_hints=entry.memo_hints,
        unfold_hints=entry.unfold_hints,
    )


def _statics(entry):
    return [datum_to_value(read(s)) for s in entry.static_args]


# -- corpus separation ---------------------------------------------------------


class TestCorpusSeparation:
    @pytest.mark.parametrize("entry", DIVERGING, ids=lambda e: e.name)
    def test_every_diverger_is_flagged(self, entry):
        report = _report(entry)
        assert not report.safe, f"{entry.name} not flagged ({entry.note})"
        assert any(
            f.kind is AnalysisKind.POSSIBLE_INFINITE_SPECIALIZATION
            for f in report.findings
        )

    @pytest.mark.parametrize("entry", DIVERGING, ids=lambda e: e.name)
    def test_findings_carry_cycle_diagnostics(self, entry):
        report = _report(entry)
        for f in report.findings:
            assert f.cycle, f"{entry.name}: finding without a cycle path"
            assert all(" -> " in edge and " at " in edge for edge in f.cycle)
            assert f.def_name and f.path

    @pytest.mark.parametrize("entry", SAFE, ids=lambda e: e.name)
    def test_zero_false_positives_on_safe_set(self, entry):
        report = _report(entry)
        assert report.safe, (
            f"{entry.name} falsely flagged ({entry.note}):\n{report}"
        )

    @pytest.mark.parametrize(
        "entry",
        [e for e in SAFE if e.runtime],
        ids=lambda e: e.name,
    )
    def test_safe_programs_actually_specialize(self, entry):
        gen = GeneratingExtension(
            entry.source,
            entry.signature,
            goal=entry.goal,
            memo_hints=entry.memo_hints,
            unfold_hints=entry.unfold_hints,
            analyze="forbid",
        )
        residual = gen.to_source(_statics(entry))
        assert residual.stats["residual_defs"] >= 1
        assert gen.cache_stats()["budget_trips"] == 0

    @pytest.mark.parametrize("entry", DIVERGING, ids=lambda e: e.name)
    def test_divergers_trip_the_runtime_budget(self, entry):
        # The backstop is independent of the analysis: with it off, the
        # same programs stop on a budget instead of diverging.
        gen = GeneratingExtension(
            entry.source,
            entry.signature,
            goal=entry.goal,
            memo_hints=entry.memo_hints,
            unfold_hints=entry.unfold_hints,
            analyze="off",
            max_unfold_depth=300,
            max_residual_size=20_000,
        )
        with pytest.raises(BudgetExceeded) as exc:
            gen.to_source(_statics(entry), use_cache=False)
        assert exc.value.cycle, "budget error should name the call cycle"
        assert gen.cache_stats()["budget_trips"] == 1


class TestBundledProgramsAreSafe:
    """The acceptance gate: examples and §7 workloads analyze clean."""

    def test_examples(self):
        from examples.incremental_rtcg import ENGINE
        from examples.quickstart import POWER
        from examples.rtcg_matcher import MATCHER

        for source, sig, goal in (
            (POWER, "DS", "power"),
            (MATCHER, "SD", "match"),
            (ENGINE, "SD", "matches?"),
        ):
            report = analyze_program(source, sig, goal=goal)
            assert report.safe, f"{goal}:\n{report}"

    def test_workloads(self):
        from repro.workloads import (
            LAZY_SIGNATURE,
            MIXWELL_SIGNATURE,
            lazy_interpreter,
            mixwell_interpreter,
        )

        for program, sig in (
            (mixwell_interpreter(), MIXWELL_SIGNATURE),
            (lazy_interpreter(), LAZY_SIGNATURE),
        ):
            report = analyze_program(program, sig)
            assert report.safe, f"{program.goal}:\n{report}"


# -- analysis internals --------------------------------------------------------


class TestAnalysisInternals:
    def test_callgraph_nodes_and_memo_edges(self):
        bta = analyze(
            parse_program(DIVERGING[0].source, goal="f"), "SD"
        )
        graph = build_callgraph(bta)
        assert "f" in graph.nodes
        assert any(e.src == "f" and e.dst == "f" for e in graph.memo_edges)

    def test_bloat_metrics_on_safe_program(self):
        # spin's recursion sits under a dynamic guard, so the self-call
        # is a memoized specialization point.
        report = analyze_program(
            "(define (spin s d) (if (null? d) s (spin s (cdr d))))",
            "SD",
            goal="spin",
        )
        assert report.safe
        entry = report.metrics["spin"]
        assert entry["residual_size_estimate"] >= 1
        assert entry["memo_sites"] == 1

    def test_unbounded_polyvariance_finding(self):
        report = _report(DIVERGING[0])  # count-up
        kinds = {f.kind for f in report.findings}
        assert AnalysisKind.UNBOUNDED_POLYVARIANCE in kinds
        assert report.metrics["f"]["unbounded_polyvariance"] is True

    def test_report_json_round_trips(self):
        report = _report(DIVERGING[0])
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["safe"] is False
        assert payload["findings"][0]["cycle"]

    def test_solver_reaches_fixpoint_with_dependencies(self):
        solver = Solver(join=max, bottom=0)

        def transfer(key, s):
            if key == "a":
                return 3
            return solver.get("a") + 1  # b depends on a

        solver.solve(["b", "a"], transfer)
        assert solver.env["a"] == 3
        assert solver.env["b"] == 4

    def test_saturate_closes_under_composition(self):
        # Transitive closure of a -> b -> c as pair composition.
        def combine(x, y):
            return ((x[0], y[1]),) if x[1] == y[0] else ()

        closed = saturate([("a", "b"), ("b", "c")], combine)
        assert ("a", "c") in closed


# -- GeneratingExtension modes and budgets -------------------------------------


class TestAnalyzeModes:
    def test_forbid_refuses_before_specialization(self):
        entry = DIVERGING[0]
        with pytest.raises(UnsafeProgramError) as exc:
            GeneratingExtension(
                entry.source, entry.signature, goal=entry.goal,
                analyze="forbid",
            )
        assert exc.value.findings
        assert "possible-infinite-specialization" in str(exc.value)

    def test_warn_warns_and_stores_the_report(self):
        entry = DIVERGING[0]
        with pytest.warns(UserWarning, match="specialization-safety"):
            gen = GeneratingExtension(
                entry.source, entry.signature, goal=entry.goal,
            )
        assert gen.analysis_report is not None
        assert not gen.analysis_report.safe

    def test_off_skips_the_analysis(self):
        entry = DIVERGING[0]
        gen = GeneratingExtension(
            entry.source, entry.signature, goal=entry.goal, analyze="off",
        )
        assert gen.analysis_report is None

    def test_safe_program_keeps_a_clean_report(self):
        gen = GeneratingExtension(
            SAFE[0].source, SAFE[0].signature, goal=SAFE[0].goal,
        )
        assert gen.analysis_report is not None
        assert gen.analysis_report.safe

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="analyze"):
            GeneratingExtension(
                SAFE[0].source, SAFE[0].signature, goal=SAFE[0].goal,
                analyze="maybe",
            )


class TestRuntimeBudgets:
    def test_unfold_budget_names_the_cycle(self):
        entry = next(e for e in DIVERGING if e.name == "spin-unfold-hint")
        gen = GeneratingExtension(
            entry.source, entry.signature, goal=entry.goal,
            unfold_hints=entry.unfold_hints, analyze="off",
            max_unfold_depth=100,
        )
        with pytest.raises(BudgetExceeded) as exc:
            gen.to_source(_statics(entry))
        assert exc.value.budget == "max_unfold_depth"
        # Under the polyvariant BTA the cycle names the variant clone
        # ("spin@SDv"), still rooted at the source function's name.
        assert any("spin" in str(f) for f in exc.value.cycle)

    def test_residual_size_budget(self):
        entry = DIVERGING[0]
        gen = GeneratingExtension(
            entry.source, entry.signature, goal=entry.goal,
            analyze="off", max_residual_size=200,
        )
        with pytest.raises(BudgetExceeded) as exc:
            gen.to_source(_statics(entry))
        assert exc.value.budget == "max_residual_size"
        assert exc.value.limit == 200

    def test_budget_exceeded_is_a_specialization_error(self):
        assert issubclass(BudgetExceeded, SpecializationError)

    def test_cogen_path_has_the_same_backstop(self):
        entry = DIVERGING[0]
        gen = GeneratingExtension(
            entry.source, entry.signature, goal=entry.goal, analyze="off",
        )
        compiled = gen.compiled()
        with pytest.raises(BudgetExceeded):
            compiled.generate(_statics(entry), max_residual_size=200)

    def test_stats_report_residual_size(self):
        gen = GeneratingExtension(
            SAFE[0].source, SAFE[0].signature, goal=SAFE[0].goal,
        )
        residual = gen.to_source(_statics(SAFE[0]))
        assert residual.stats["residual_size"] >= 1


# -- the pe.check facade -------------------------------------------------------


class TestCheckFacade:
    def test_check_specialization_safety_returns_report(self):
        from repro.pe.check import check_specialization_safety

        bta = analyze(
            parse_program(DIVERGING[0].source, goal="f"), "SD"
        )
        report = check_specialization_safety(bta)
        assert not report.safe
        assert report.to_json() == analyze_bta(bta).to_json()

    def test_verify_specialization_safety_raises(self):
        from repro.pe.check import verify_specialization_safety

        bta = analyze(
            parse_program(DIVERGING[0].source, goal="f"), "SD"
        )
        with pytest.raises(UnsafeProgramError):
            verify_specialization_safety(bta)
        safe_bta = analyze(
            parse_program(SAFE[0].source, goal="power"), "DS"
        )
        verify_specialization_safety(safe_bta)  # must not raise


# -- CLI -----------------------------------------------------------------------


class TestAnalyzeCli:
    def _write(self, tmp_path, entry):
        f = tmp_path / f"{entry.name}.scm"
        f.write_text(entry.source)
        return str(f)

    def test_diverger_exits_1_with_cycle(self, tmp_path, capsys):
        from repro.__main__ import main

        entry = DIVERGING[0]
        path = self._write(tmp_path, entry)
        code = main(["analyze", path, "--sig", entry.signature,
                     "--goal", entry.goal])
        out = capsys.readouterr().out
        assert code == 1
        assert "possible-infinite-specialization" in out
        assert " -> " in out  # the cycle edge

    def test_safe_program_exits_0(self, tmp_path, capsys):
        from repro.__main__ import main

        entry = SAFE[0]
        path = self._write(tmp_path, entry)
        code = main(["analyze", path, "--sig", entry.signature,
                     "--goal", entry.goal])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        from repro.__main__ import main

        entry = DIVERGING[0]
        path = self._write(tmp_path, entry)
        code = main(["analyze", path, "--sig", entry.signature,
                     "--goal", entry.goal, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["safe"] is False
        findings = payload["programs"][path]["findings"]
        assert findings and findings[0]["cycle"]

    def test_builtin_workloads_gate(self, capsys):
        from repro.__main__ import main

        code = main(["analyze", "--builtin", "workloads"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload:mixwell" in out and "workload:lazy" in out

    def test_file_without_sig_is_usage_error(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._write(tmp_path, SAFE[0])
        assert main(["analyze", path]) == 1

    def test_lint_json(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._write(tmp_path, SAFE[0])
        code = main(["lint", path, "--goal", SAFE[0].goal,
                     "--sig", SAFE[0].signature, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["clean"] is True
        assert payload["bytecode"] == [] and payload["bta"] == []

    def test_disasm_json(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._write(tmp_path, SAFE[0])
        code = main(["disasm", path, "--goal", SAFE[0].goal,
                     "--verify", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["templates"][0]["verified"] is True
        assert "disassembly" in payload["templates"][0]


# -- forbid-accepted programs specialize within budget -------------------------


class TestForbidSoundness:
    @given(case=guarded_descent_programs())
    @settings(max_examples=30, deadline=None)
    def test_accepted_programs_reach_a_fixpoint(self, case):
        source, signature, goal, static_args = case
        # ``forbid`` must accept every guarded-descent shape...
        gen = GeneratingExtension(
            source, signature, goal=goal, analyze="forbid",
            max_unfold_depth=2_000, max_residual_size=100_000,
        )
        # ...and the accepted program must specialize inside the budget.
        residual = gen.to_source(
            [datum_to_value(_to_datum(v)) for v in static_args],
            use_cache=False,
        )
        assert residual.stats["residual_defs"] >= 1
        assert gen.cache_stats()["budget_trips"] == 0


def _to_datum(value):
    if isinstance(value, list):
        return [_to_datum(v) for v in value]
    return value
