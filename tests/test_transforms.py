"""Tests for alpha renaming, assignment elimination, lambda lifting, beta-let."""

from hypothesis import given

from repro.interp import Interpreter, run_program
from repro.lang import (
    App,
    Lam,
    Let,
    alpha_rename,
    beta_let,
    beta_let_program,
    eliminate_assignments,
    free_variables,
    has_assignments,
    lambda_lift,
    parse_expr,
    parse_program,
    walk,
)
from repro.lang.assignment import assigned_variables
from repro.sexp import sym
from tests.strategies import higher_order_exprs


def _bound_names(program):
    names = []
    for d in program.defs:
        for node in walk(d.body):
            if isinstance(node, Lam):
                names.extend(node.params)
            elif isinstance(node, Let):
                names.append(node.var)
    return names


class TestAlphaRename:
    def test_all_inner_binders_unique(self):
        p = parse_program(
            """
            (define (f x)
              (let ((y x))
                (let ((y (+ y 1)))
                  ((lambda (y) (* y y)) y))))
            """
        )
        renamed = alpha_rename(p)
        names = _bound_names(renamed)
        assert len(names) == len(set(names))

    def test_semantics_preserved(self):
        p = parse_program(
            "(define (f x) (let ((y x)) (let ((y (+ y 1))) (* y 10))))"
        )
        assert run_program(alpha_rename(p), [4]) == run_program(p, [4]) == 50

    def test_free_variables_untouched(self):
        e = parse_expr("(lambda (x) (+ x y))")
        from repro.lang import Gensym, alpha_rename_expr

        renamed = alpha_rename_expr(e, Gensym())
        assert sym("y") in free_variables(renamed)

    @given(higher_order_exprs())
    def test_random_expressions_preserved(self, source):
        from repro.lang import Gensym, alpha_rename_expr

        e = parse_expr(source)
        renamed = alpha_rename_expr(e, Gensym())
        interp = Interpreter()
        assert interp.eval(e, None) == interp.eval(renamed, None)


class TestAssignmentElimination:
    def test_no_set_bang_remains(self):
        p = parse_program(
            """
            (define (counter n)
              (let ((i 0))
                (begin (set! i (+ i 1)) (+ i n))))
            """
        )
        out = eliminate_assignments(p)
        assert not any(has_assignments(d.body) for d in out.defs)

    def test_semantics_of_mutation(self):
        p = parse_program(
            """
            (define (f n)
              (let ((i 0))
                (begin (set! i (+ i 1))
                       (begin (set! i (* i 10))
                              (+ i n)))))
            """
        )
        out = eliminate_assignments(p)
        assert run_program(out, [5]) == 15

    def test_assigned_parameter(self):
        p = parse_program(
            "(define (f x) (begin (set! x (+ x 1)) (* x 2)))"
        )
        out = eliminate_assignments(p)
        assert not any(has_assignments(d.body) for d in out.defs)
        assert run_program(out, [10]) == 22

    def test_letrec_works_through_cells(self):
        p = parse_program(
            """
            (define (f n)
              (letrec ((fact (lambda (k) (if (zero? k) 1 (* k (fact (- k 1)))))))
                (fact n)))
            """
        )
        out = eliminate_assignments(p)
        assert run_program(out, [5]) == 120

    def test_closure_shares_cell(self):
        p = parse_program(
            """
            (define (f)
              (let ((x 1))
                (let ((inc (lambda () (set! x (+ x 1)))))
                  (begin (inc) (begin (inc) x)))))
            """
        )
        out = eliminate_assignments(p)
        assert run_program(out, []) == 3

    def test_assigned_variables_detection(self):
        e = parse_expr("(let ((x 1)) (begin (set! x 2) x))")
        assert len(assigned_variables(e)) == 1


class TestLambdaLift:
    def test_directly_called_binding_is_lifted(self):
        p = parse_program(
            """
            (define (f a b)
              (let ((add (lambda (x) (+ x a))))
                (add (add b))))
            """
        )
        lifted = lambda_lift(p)
        assert len(lifted.defs) == 2
        # No Lam nodes remain in the host body.
        host = lifted.lookup(sym("f"))
        assert not any(isinstance(n, Lam) for n in walk(host.body))
        assert run_program(lifted, [10, 5]) == 25

    def test_escaping_lambda_not_lifted(self):
        p = parse_program(
            """
            (define (f a)
              (let ((g (lambda (x) (+ x a))))
                (cons g '())))
            """
        )
        lifted = lambda_lift(p)
        assert len(lifted.defs) == 1

    def test_nested_lifting_fixpoint(self):
        p = parse_program(
            """
            (define (f a)
              (let ((outer (lambda (x)
                             (let ((inner (lambda (y) (* y x))))
                               (inner (inner a))))))
                (outer 3)))
            """
        )
        lifted = lambda_lift(p)
        assert len(lifted.defs) == 3
        assert run_program(lifted, [2]) == run_program(p, [2]) == 18

    def test_lifted_function_keeps_semantics(self):
        src = """
        (define (poly a b c x)
          (let ((term (lambda (coef power)
                        (* coef (expt x power)))))
            (+ (term a 2) (+ (term b 1) (term c 0)))))
        """
        p = parse_program(src)
        lifted = lambda_lift(p)
        for args in ([1, 2, 3, 4], [0, 0, 7, 9], [2, -1, 0, 3]):
            assert run_program(lifted, args) == run_program(p, args)

    def test_free_vars_become_parameters(self):
        p = parse_program(
            """
            (define (f a b)
              (let ((g (lambda (x) (+ (+ x a) b))))
                (g 1)))
            """
        )
        lifted = lambda_lift(p)
        new_def = [d for d in lifted.defs if d.name is not sym("f")][0]
        assert len(new_def.params) == 3


class TestBetaLet:
    def test_direct_application_becomes_lets(self):
        e = parse_expr("((lambda (x y) (+ x y)) 1 2)")
        out = beta_let(e)
        assert isinstance(out, Let)
        assert not any(isinstance(n, App) for n in walk(out))

    def test_multi_binding_let_flattens(self):
        e = parse_expr("(let ((x 1) (y 2)) (+ x y))")
        out = beta_let(e)
        assert isinstance(out, Let)

    def test_semantics(self):
        e = parse_expr("((lambda (x y) (* x y)) (+ 1 2) 4)")
        interp = Interpreter()
        assert interp.eval(beta_let(e), None) == interp.eval(e, None) == 12

    @given(higher_order_exprs())
    def test_random_expressions_preserved(self, source):
        e = parse_expr(source)
        interp = Interpreter()
        assert interp.eval(beta_let(e), None) == interp.eval(e, None)

    def test_program_variant(self):
        p = parse_program("(define (f) (let ((x 1) (y 2)) (+ x y)))")
        assert run_program(beta_let_program(p), []) == 3
