"""Warm-start tests: a populated image store serves residual code to a
fresh generating extension (and a fresh process) without running the
specializer at all."""

from __future__ import annotations

import os
import subprocess
import sys

from repro.rtcg import make_generating_extension

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


def _gen(store_dir, **kwargs):
    return make_generating_extension(
        POWER, "DS", goal="power", store_dir=store_dir, **kwargs
    )


class TestWarmStartInProcess:
    def test_fresh_extension_serves_from_disk(self, tmp_path):
        store_dir = tmp_path / "store"
        cold = _gen(store_dir)
        rp = cold.to_object_code([5])
        assert cold.cache_stats()["specializer_runs"] == 1

        # A brand-new extension over the same program: L1 is empty, so
        # the application must be served entirely from the store.
        warm = _gen(store_dir)
        rp2 = warm.to_object_code([5])
        stats = warm.cache_stats()
        assert stats["specializer_runs"] == 0
        assert stats["store"]["hits"] == 1
        assert rp2.stats.get("disk_hit") is True
        assert rp2.stats.get("loaded_from_image") is True
        assert rp2.fingerprint() == rp.fingerprint()
        assert rp2.run([2]) == rp.run([2]) == 32

    def test_warm_start_result_is_l1_cached(self, tmp_path):
        store_dir = tmp_path / "store"
        _gen(store_dir).to_object_code([5])
        warm = _gen(store_dir)
        warm.to_object_code([5])
        warm.to_object_code([5])  # second application: L1, not disk
        stats = warm.cache_stats()
        assert stats["store"]["hits"] == 1
        assert stats["hits"] == 1

    def test_different_static_still_specializes(self, tmp_path):
        store_dir = tmp_path / "store"
        _gen(store_dir).to_object_code([5])
        warm = _gen(store_dir)
        warm.to_object_code([7])
        stats = warm.cache_stats()
        assert stats["specializer_runs"] == 1
        assert stats["store"]["misses"] == 1

    def test_source_backend_warm_starts_too(self, tmp_path):
        store_dir = tmp_path / "store"
        _gen(store_dir).to_source([4])
        warm = _gen(store_dir)
        rs = warm.to_source([4])
        assert warm.cache_stats()["specializer_runs"] == 0
        assert rs.run([3]) == 81

    def test_corrupted_store_falls_back_to_specializing(self, tmp_path):
        store_dir = tmp_path / "store"
        rp = _gen(store_dir).to_object_code([5])
        # Corrupt every stored object in place.
        objects = store_dir / "objects"
        for shard in objects.iterdir():
            for obj in shard.iterdir():
                data = bytearray(obj.read_bytes())
                data[len(data) // 2] ^= 0xFF
                obj.write_bytes(bytes(data))
        warm = _gen(store_dir)
        rp2 = warm.to_object_code([5])
        stats = warm.cache_stats()
        assert stats["specializer_runs"] == 1
        assert stats["store"]["read_errors"] == 1
        assert rp2.run([2]) == rp.run([2]) == 32

    def test_verify_on_load_false_skips_verifier(self, tmp_path, monkeypatch):
        store_dir = tmp_path / "store"
        _gen(store_dir).to_object_code([5])
        calls = []
        import repro.image.store as store_mod

        monkeypatch.setattr(
            store_mod.ImageStore,
            "_verify",
            staticmethod(lambda residual: calls.append(residual)),
        )
        _gen(store_dir).to_object_code([5])
        assert len(calls) == 1
        _gen(store_dir, verify_on_load=False).to_object_code([5])
        assert len(calls) == 1  # unchanged: verifier skipped


class TestWarmStartAcrossProcesses:
    """The end-to-end claim: export in one process, load in another."""

    def _run(self, *argv, cwd):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
            timeout=120,
        )

    def test_export_then_load_in_fresh_process(self, tmp_path):
        source = tmp_path / "power.scm"
        source.write_text(POWER)
        store = tmp_path / "store"

        exported = self._run(
            "image", "export", str(source), "--sig", "DS",
            "--static", "5", "--store", str(store),
            cwd=tmp_path,
        )
        assert exported.returncode == 0, exported.stderr
        digest = exported.stdout.split()[0]
        assert len(digest) == 64

        loaded = self._run(
            "image", "load", digest, "--store", str(store),
            "--dynamic", "2",
            cwd=tmp_path,
        )
        assert loaded.returncode == 0, loaded.stderr
        assert loaded.stdout.strip() == "32"
        assert "verified yes" in loaded.stderr

    def test_standalone_image_file_across_processes(self, tmp_path):
        source = tmp_path / "power.scm"
        source.write_text(POWER)
        image = tmp_path / "power5.rpoi"

        exported = self._run(
            "image", "export", str(source), "--sig", "DS",
            "--static", "5", "-o", str(image),
            cwd=tmp_path,
        )
        assert exported.returncode == 0, exported.stderr
        assert image.is_file()

        loaded = self._run(
            "image", "load", str(image), "--dynamic", "3",
            cwd=tmp_path,
        )
        assert loaded.returncode == 0, loaded.stderr
        assert loaded.stdout.strip() == "243"

    def test_stats_reports_disk_hit_in_fresh_process(self, tmp_path):
        import json

        source = tmp_path / "power.scm"
        source.write_text(POWER)
        store = tmp_path / "store"

        first = self._run(
            "stats", str(source), "--sig", "DS", "--static", "5",
            "--store", str(store), "--json",
            cwd=tmp_path,
        )
        assert first.returncode == 0, first.stderr
        cold = json.loads(first.stdout)
        assert cold["disk_hit"] is False
        assert cold["cache"]["specializer_runs"] == 1

        second = self._run(
            "stats", str(source), "--sig", "DS", "--static", "5",
            "--store", str(store), "--json",
            cwd=tmp_path,
        )
        assert second.returncode == 0, second.stderr
        warm = json.loads(second.stdout)
        assert warm["disk_hit"] is True
        assert warm["cache"]["specializer_runs"] == 0
        assert warm["cache"]["store"]["hits"] == 1
