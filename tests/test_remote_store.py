"""The remote L3 object tier: protocol, client, and TieredStore.

Covers the obj_get/obj_put/obj_stat/obj_sync frames end to end over a
real socket, the client's retry/refusal split, and the TieredStore
semantics the ISSUE pins: read-through with replicate-down, TTL'd
negative caching, graceful degradation when L3 is unreachable, the
write-behind queue (drain-on-reconnect and bounded-drop), and the trust
story — a poisoned image on the wire never reaches the machine.
"""

from __future__ import annotations

import hashlib
import socket
import time

import pytest

from repro.image.codec import encode_residual
from repro.image.remote import (
    ObjectServer,
    RemoteStoreClient,
    RemoteStoreError,
    TieredStore,
    parse_endpoint,
    prefetch_store,
    sync_stores,
)
from repro.image.store import ImageStore, StoreKey, store_key
from repro.rtcg import make_generating_extension

POWER = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))"


@pytest.fixture
def gen():
    return make_generating_extension(POWER, "DS", goal="power")


@pytest.fixture
def server(tmp_path):
    with ObjectServer(tmp_path / "l3", port=0) as srv:
        yield srv


@pytest.fixture
def client(server):
    c = RemoteStoreClient("127.0.0.1", server.port, timeout=5.0)
    yield c
    c.close()


def _key(n: int = 1) -> StoreKey:
    return store_key("prog", (n,), "duplicate", "object")


def _image_bytes(gen, static: int = 5) -> tuple[str, bytes]:
    data = encode_residual(gen.to_object_code([static]))
    return hashlib.sha256(data).hexdigest(), data


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestParseEndpoint:
    def test_host_port(self):
        assert parse_endpoint("example.com:7459") == ("example.com", 7459)

    def test_tuple_passthrough(self):
        assert parse_endpoint(("h", 1)) == ("h", 1)

    def test_rejects_garbage(self):
        for bad in ("", "justhost", "h:", "h:notaport", "h:-1", "h:70000"):
            with pytest.raises(ValueError):
                parse_endpoint(bad)


class TestProtocol:
    def test_ping(self, client):
        assert client.ping()

    def test_push_fetch_by_digest(self, gen, client):
        digest, data = _image_bytes(gen)
        result = client.push(digest, data)
        assert result.get("stored")
        hit = client.fetch(digest=digest)
        assert hit == (digest, data)

    def test_push_fetch_by_key(self, gen, client):
        digest, data = _image_bytes(gen)
        client.push(digest, data, key=_key().digest)
        hit = client.fetch(key=_key().digest)
        assert hit == (digest, data)

    def test_fetch_miss_is_none(self, client):
        assert client.fetch(key=_key().digest) is None
        assert client.fetch(digest="ab" * 32) is None

    def test_push_digest_mismatch_refused(self, gen, client, server):
        _, data = _image_bytes(gen)
        lie = "ab" * 32
        with pytest.raises(RemoteStoreError) as exc:
            client.push(lie, data)
        assert not exc.value.retryable
        # the refused payload never landed
        assert client.fetch(digest=lie) is None
        assert server.stats()["counters"]["bad_requests"] == 1

    def test_push_dedups_by_digest(self, gen, client, server):
        digest, data = _image_bytes(gen)
        assert client.push(digest, data).get("stored")
        assert client.push(digest, data).get("deduped")
        assert server.stats()["counters"]["dedups"] == 1

    def test_dataless_push_indexes_existing_object(self, gen, client):
        digest, data = _image_bytes(gen)
        client.push(digest, data)
        # a second worker can write a ref without re-uploading bytes
        result = client.push(digest, None, key=_key(2).digest)
        assert not result.get("missing")
        assert client.fetch(key=_key(2).digest) == (digest, data)

    def test_dataless_push_of_absent_object_reports_missing(self, client):
        assert client.push("cd" * 32, None).get("missing")

    def test_stat(self, gen, client):
        digest, data = _image_bytes(gen)
        client.push(digest, data, key=_key().digest)
        st = client.stat(digest=digest)
        assert st is not None and st.size == len(data)
        assert client.stat(key=_key().digest).digest == digest
        assert client.stat(digest="ab" * 32) is None

    def test_inventory(self, gen, client):
        digest, data = _image_bytes(gen)
        client.push(digest, data, key=_key().digest)
        objects, refs = client.inventory()
        assert [st.digest for st in objects] == [digest]
        assert refs == {_key().digest: digest}

    def test_corrupt_at_rest_served_as_miss(self, gen, client, server):
        digest, data = _image_bytes(gen)
        client.push(digest, data)
        server.backend._object_path(digest).write_bytes(b"torn")
        assert client.fetch(digest=digest) is None

    def test_read_object_raises_filenotfound_on_miss(self, client):
        with pytest.raises(FileNotFoundError):
            client.read_object("ab" * 32)

    def test_write_ref_to_missing_object_refused(self, client):
        with pytest.raises(RemoteStoreError) as exc:
            client.write_ref(_key().digest, "ab" * 32)
        assert not exc.value.retryable

    def test_client_is_a_store_backend(self, gen, client):
        """The client satisfies the full StoreBackend protocol, so
        ImageStore can run directly against the network."""
        store = ImageStore(backend=client)
        rp = gen.to_object_code([5])
        digest = store.put(_key(), rp)
        assert digest is not None
        out = store.get(_key())
        assert out is not None and out.run([2]) == 32


class TestClientRetry:
    def test_unreachable_raises_retryable(self):
        c = RemoteStoreClient(
            "127.0.0.1", _free_port(), timeout=0.2, retries=1, backoff=0.01
        )
        with pytest.raises(RemoteStoreError) as exc:
            c.fetch(digest="ab" * 32)
        assert exc.value.retryable
        assert not c.ping()
        c.close()

    def test_reconnects_after_server_restart(self, tmp_path, gen):
        port = _free_port()
        digest, data = _image_bytes(gen)
        with ObjectServer(tmp_path / "l3", port=port) as srv:
            c = RemoteStoreClient("127.0.0.1", port, timeout=5.0)
            c.push(digest, data)
            srv.stop()
            with ObjectServer(tmp_path / "l3", port=port):
                # the pooled connection died with the old server; the
                # retry loop transparently reconnects
                assert c.fetch(digest=digest) == (digest, data)
            c.close()


class TestTieredStore:
    def _tiered(self, tmp_path, server, **kwargs) -> TieredStore:
        local = ImageStore(tmp_path / "l2")
        remote = RemoteStoreClient("127.0.0.1", server.port, timeout=5.0)
        return TieredStore(local, remote, **kwargs)

    def test_read_through_replicates_down(self, tmp_path, server, gen):
        digest, data = _image_bytes(gen)
        RemoteStoreClient("127.0.0.1", server.port).push(
            digest, data, key=_key().digest
        )
        ts = self._tiered(tmp_path, server)
        out = ts.get(_key())
        assert out is not None and out.run([2]) == 32
        assert out.stats["l3_hit"]
        rs = ts.stats()["remote"]
        assert rs["remote_hits"] == 1 and rs["replicated"] == 1
        # second get is served by L2 without touching the wire
        again = ts.get(_key())
        assert again is not None and not again.stats.get("l3_hit")
        assert ts.stats()["remote"]["remote_hits"] == 1
        ts.close(flush=False)

    def test_negative_cache_bounds_remote_probes(self, tmp_path, server):
        ts = self._tiered(tmp_path, server, negative_ttl=60.0)
        assert ts.get(_key()) is None
        assert ts.get(_key()) is None
        rs = ts.stats()["remote"]
        assert rs["remote_misses"] == 1  # only the first get probed L3
        assert rs["negative_hits"] == 1
        ts.close(flush=False)

    def test_put_clears_negative_entry(self, tmp_path, server, gen):
        ts = self._tiered(tmp_path, server, negative_ttl=60.0)
        assert ts.get(_key()) is None
        ts.put(_key(), gen.to_object_code([5]))
        assert ts.flush()
        # a fresh worker sharing the L3 sees it immediately; this
        # tier serves it from L2 (the put wrote locally first)
        assert ts.get(_key()) is not None
        assert ts.stats()["remote"]["negative_entries"] == 0
        ts.close(flush=False)

    def test_degrades_to_local_when_remote_down(self, tmp_path):
        local = ImageStore(tmp_path / "l2")
        remote = RemoteStoreClient(
            "127.0.0.1", _free_port(), timeout=0.2, retries=0
        )
        ts = TieredStore(local, remote, retry_interval=30.0)
        assert ts.get(_key()) is None
        rs = ts.stats()["remote"]
        assert rs["remote_errors"] == 1 and rs["down"]
        # while down, later gets skip the wire entirely
        assert ts.get(_key(2)) is None
        assert ts.stats()["remote"]["skipped_down"] == 1
        ts.close(flush=False)

    def test_extension_specializes_locally_when_remote_down(self, tmp_path):
        gen = make_generating_extension(
            POWER, "DS", goal="power",
            store_dir=tmp_path / "l2",
            remote_store=RemoteStoreClient(
                "127.0.0.1", _free_port(), timeout=0.2, retries=0
            ),
        )
        assert gen.to_object_code([5]).run([2]) == 32
        assert gen.cache_stats()["specializer_runs"] == 1
        assert gen.cache_stats()["store"]["remote"]["remote_errors"] >= 1
        gen.close_store(flush=False)

    def test_write_behind_drains_on_reconnect(self, tmp_path, gen):
        port = _free_port()
        local = ImageStore(tmp_path / "l2")
        remote = RemoteStoreClient(
            "127.0.0.1", port, timeout=1.0, retries=0
        )
        ts = TieredStore(local, remote, retry_interval=0.05)
        digest = ts.put(_key(), gen.to_object_code([5]))
        assert digest is not None
        # nobody is listening yet: the put queues, the worker retries
        deadline = time.monotonic() + 5
        while ts.stats()["remote"]["wb_retries"] == 0:
            assert time.monotonic() < deadline, "worker never probed"
            time.sleep(0.01)
        with ObjectServer(tmp_path / "l3", port=port):
            assert ts.flush(timeout=10.0)
            rs = ts.stats()["remote"]
            assert rs["wb_flushed"] == 1 and rs["wb_dropped"] == 0
            c = RemoteStoreClient("127.0.0.1", port)
            assert c.fetch(key=_key().digest) == (
                digest, local.read_object(digest)
            )
            c.close()
        ts.close(flush=False)

    def test_write_behind_drops_when_saturated(self, tmp_path, gen):
        local = ImageStore(tmp_path / "l2")
        remote = RemoteStoreClient(
            "127.0.0.1", _free_port(), timeout=0.2, retries=0
        )
        ts = TieredStore(local, remote, retry_interval=30.0, max_queue=1)
        for n in (3, 4, 5):
            ts.put(_key(n), gen.to_object_code([n]))
        rs = ts.stats()["remote"]
        # the specializer never blocked: beyond the bound, writes drop
        assert rs["wb_dropped"] >= 1
        assert rs["wb_enqueued"] + rs["wb_dropped"] == 3
        # L2 kept every image regardless
        assert all(local.get(_key(n)) is not None for n in (3, 4, 5))
        ts.close(flush=False)


class TestSecondMachine:
    """The fig11 story: machine 2, cold local store, warm shared L3."""

    def test_specializer_never_runs_on_machine_two(self, tmp_path, server):
        gen1 = make_generating_extension(
            POWER, "DS", goal="power",
            store_dir=tmp_path / "m1",
            remote_store=("127.0.0.1", server.port),
        )
        assert gen1.to_object_code([5]).run([2]) == 32
        assert gen1.flush_store()
        gen1.close_store()

        gen2 = make_generating_extension(
            POWER, "DS", goal="power",
            store_dir=tmp_path / "m2",  # cold: never saw this program
            remote_store=("127.0.0.1", server.port),
        )
        rp = gen2.to_object_code([5])
        assert rp.run([2]) == 32
        stats = gen2.cache_stats()
        assert stats["specializer_runs"] == 0
        assert stats["store"]["remote"]["remote_hits"] == 1
        # the image replicated into machine 2's L2 on the way through
        assert stats["store"]["adopts"] == 1
        gen2.close_store()

    def test_poisoned_remote_image_never_reaches_the_machine(
        self, tmp_path, server, gen
    ):
        """L3 is untrusted: a well-framed image whose bytecode is
        unsound (wire tampering, hostile peer) must be rejected by
        verify-on-load — the worker re-specializes instead."""
        from repro.vm.instructions import Op
        from repro.vm.machine import VmClosure
        from repro.vm.template import Template

        gen1 = make_generating_extension(
            POWER, "DS", goal="power", store_dir=tmp_path / "m1",
            remote_store=("127.0.0.1", server.port),
        )
        rp = gen1.to_object_code([5])
        key_digest = rp.stats["image_key"]
        assert gen1.flush_store()
        gen1.close_store()

        # forge an unsound image and overwrite the shared ref with it
        name = next(iter(rp.machine.globals))
        bad = Template(
            code=((Op.JUMP, 99), (Op.RETURN,)), literals=(), arity=1,
            nlocals=1, name=rp.machine.globals[name].template.name,
        )
        rp.machine.globals[name] = VmClosure(bad, ())
        poison = encode_residual(rp)
        poison_digest = hashlib.sha256(poison).hexdigest()
        c = RemoteStoreClient("127.0.0.1", server.port)
        c.push(poison_digest, poison, key=key_digest)
        c.close()

        gen2 = make_generating_extension(
            POWER, "DS", goal="power", store_dir=tmp_path / "m2",
            remote_store=("127.0.0.1", server.port),
        )
        out = gen2.to_object_code([5])
        assert out.run([2]) == 32  # correct answer, locally generated
        stats = gen2.cache_stats()
        assert stats["specializer_runs"] == 1
        assert stats["store"]["remote"]["remote_verify_failures"] == 1
        # the poison was never adopted into L2
        assert stats["store"]["adopts"] == 0
        gen2.close_store()


class TestBulkMovement:
    def test_sync_then_prefetch_round_trip(self, tmp_path, server, gen):
        a = ImageStore(tmp_path / "a")
        for n in (3, 4):
            a.put(_key(n), gen.to_object_code([n]))
        c = RemoteStoreClient("127.0.0.1", server.port)
        report = sync_stores(a, c)
        assert report["objects_pushed"] == 2 and report["errors"] == 0
        # second sync is a no-op: everything dedups
        report = sync_stores(a, c)
        assert report["objects_pushed"] == 0
        assert report["objects_deduped"] == 2

        b = ImageStore(tmp_path / "b")
        report = prefetch_store(b, c)
        assert report["objects_fetched"] == 2 and report["errors"] == 0
        for n in (3, 4):
            out = b.get(_key(n))
            assert out is not None and out.run([2]) == 2 ** n
        # prefetch again: refs already current
        assert prefetch_store(b, c)["objects_fetched"] == 0
        c.close()

    def test_sync_raises_when_unreachable(self, tmp_path):
        a = ImageStore(tmp_path / "a")
        c = RemoteStoreClient(
            "127.0.0.1", _free_port(), timeout=0.2, retries=0
        )
        with pytest.raises(RemoteStoreError):
            sync_stores(a, c)
        c.close()
