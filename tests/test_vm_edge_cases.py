"""VM dispatch edge cases, run through EVERY generated dispatch loop.

These lock in the semantics all loops generated from the instruction
table (:mod:`repro.vm.dispatch`) must preserve: first-class ``PrimSpec``
in non-tail ``CALL`` position, ``TAIL_CALL`` of a prim with an empty
continuation stack, and ``JUMP_IF_FALSE`` treating only ``#f`` as false.
Every test is parametrized over ``Machine.call`` (the production loop),
:func:`~repro.vm.profile.call_profiled` (the counting twin), and a
superinstruction-fused :class:`~repro.vm.superinst.SuperMachine` (the
template statically fused under its own plan), so a divergence between
any pair of generated loops fails here by construction.
"""

import pytest

from repro.lang.prims import PRIMITIVES
from repro.sexp import sym
from repro.vm import (
    Machine,
    Op,
    Template,
    TemplateIdent,
    VMError,
    VMProfile,
    VmClosure,
    assemble,
    call_profiled,
    fuse_template,
    instruction,
    instruction_using_label,
    attach_label,
    make_label,
    plan_from_template,
    sequentially,
    Lit,
)
from repro.vm.superinst import SuperMachine


def run_plain(template, args=(), globals_=None):
    machine = Machine(globals_)
    return machine.call(VmClosure(template, ()), list(args))


def run_counting(template, args=(), globals_=None):
    machine = Machine(globals_)
    profile = VMProfile()
    result = call_profiled(
        machine, VmClosure(template, ()), list(args), profile
    )
    assert profile.total_instructions > 0
    return result


def run_super(template, args=(), globals_=None):
    # Fuse the template under its own static plan (every fusable
    # adjacent run in its blocks) and run it on the fused dispatch
    # loop — the superinstruction arms plus all base arms.
    plan = plan_from_template(template)
    fused = fuse_template(template, plan)
    machine = SuperMachine(globals_, plan=plan)
    return machine.call(VmClosure(fused, ()), list(args))


RUNNERS = [
    pytest.param(run_plain, id="production-loop"),
    pytest.param(run_counting, id="counting-loop"),
    pytest.param(run_super, id="superinstruction-loop"),
]


def simple(*fragments, arity=0, nlocals=None, name="test"):
    frag = sequentially(*fragments, instruction(Op.RETURN))
    return assemble(
        frag, arity, nlocals if nlocals is not None else max(arity, 4), name
    )


PLUS = PRIMITIVES[sym("+")]


@pytest.mark.parametrize("run", RUNNERS)
class TestPrimAsFirstClassValue:
    def test_prim_in_non_tail_call_position(self, run):
        # (let (t (+ 3 4)) (+ t 10)) with + fetched as a *value* from a
        # global and applied via CALL: the prim result must flow back
        # into the same frame, not unwind it.
        t = simple(
            instruction(Op.GLOBAL, Lit(sym("add"))),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(3)),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(4)),
            instruction(Op.PUSH),
            instruction(Op.CALL, 2),       # val = 7, same frame continues
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(10)),
            instruction(Op.PUSH),
            instruction(Op.PRIM, Lit(PLUS), 2),
        )
        assert run(t, [], {sym("add"): PLUS}) == 17

    def test_tail_call_of_prim_with_empty_conts(self, run):
        # TAIL_CALL of a prim at the outermost frame: the continuation
        # stack is empty, so the prim's value is the call's result.
        frag = sequentially(
            instruction(Op.GLOBAL, Lit(sym("add"))),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(20)),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(22)),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 2),
        )
        t = assemble(frag, 0, 0, "tailprim")
        assert run(t, [], {sym("add"): PLUS}) == 42

    def test_tail_call_of_prim_pops_continuation(self, run):
        # A closure whose body tail-calls a prim, itself invoked via
        # CALL: the prim's value must return through the popped
        # continuation into the caller's frame.
        inner_frag = sequentially(
            instruction(Op.GLOBAL, Lit(sym("add"))),
            instruction(Op.PUSH),
            instruction(Op.LOCAL, 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(1)),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 2),
        )
        inner = assemble(inner_frag, 1, 1, "inc")
        t = simple(
            instruction(Op.MAKE_CLOSURE, Lit(inner), 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(5)),
            instruction(Op.PUSH),
            instruction(Op.CALL, 1),       # inc(5) -> 6, back here
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(100)),
            instruction(Op.PUSH),
            instruction(Op.PRIM, Lit(PLUS), 2),
        )
        assert run(t, [], {sym("add"): PLUS}) == 106

    def test_non_procedure_operator_raises(self, run):
        t = simple(
            instruction(Op.CONST, Lit(99)),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 0),
        )
        with pytest.raises(VMError, match="non-procedure"):
            run(t)


@pytest.mark.parametrize("run", RUNNERS)
class TestJumpIfFalseStrictness:
    def _brancher(self, test_value):
        # if <test> then 'taken else 'fell
        label = make_label()
        t = simple(
            instruction(Op.CONST, Lit(test_value)),
            instruction_using_label(Op.JUMP_IF_FALSE, label),
            instruction(Op.CONST, Lit("then")),
            instruction(Op.RETURN),
            attach_label(label, instruction(Op.CONST, Lit("else"))),
        )
        return t

    def test_false_branches(self, run):
        assert run(self._brancher(False)) == "else"

    @pytest.mark.parametrize(
        "truthy", [0, "", (), None, 0.0, [], "f"],
        ids=["zero", "empty-string", "empty-tuple", "none", "zero-float",
             "nil-list", "string-f"],
    )
    def test_only_hash_f_is_false(self, run, truthy):
        # Scheme semantics: everything except #f is true — 0, "", '()
        # and even Python None must take the then-branch.
        assert run(self._brancher(truthy)) == "then"


@pytest.mark.parametrize("run", RUNNERS)
class TestArityAndFrames:
    def test_arity_mismatch_in_call(self, run):
        inner = assemble(
            sequentially(instruction(Op.LOCAL, 0), instruction(Op.RETURN)),
            1, 1, "one-arg",
        )
        t = simple(
            instruction(Op.MAKE_CLOSURE, Lit(inner), 0),
            instruction(Op.PUSH),
            instruction(Op.TAIL_CALL, 0),  # zero args to a 1-ary closure
        )
        with pytest.raises(VMError, match="expected 1"):
            run(t)

    def test_locals_frame_padded_beyond_arity(self, run):
        # nlocals > arity: the extra slots start as None-initialized
        # temporaries (SETLOC/LOCAL round-trip through slot arity+1).
        t = simple(
            instruction(Op.CONST, Lit(11)),
            instruction(Op.SETLOC, 2),
            instruction(Op.LOCAL, 2),
            arity=1,
            nlocals=3,
        )
        assert run(t, [0]) == 11


class TestCountingLoopAccounting:
    def test_per_template_counts(self):
        inner = assemble(
            sequentially(instruction(Op.LOCAL, 0), instruction(Op.RETURN)),
            1, 1, "identity",
        )
        outer = simple(
            instruction(Op.MAKE_CLOSURE, Lit(inner), 0),
            instruction(Op.PUSH),
            instruction(Op.CONST, Lit(5)),
            instruction(Op.PUSH),
            instruction(Op.CALL, 1),
            name="outer",
        )
        machine = Machine()
        profile = VMProfile()
        assert (
            call_profiled(machine, VmClosure(outer, ()), [], profile) == 5
        )
        # Counts are keyed by stable per-template identity (name +
        # content digest), not bare name.
        assert {k.name for k in profile.template_invocations} == {
            "outer", "identity",
        }
        assert all(
            isinstance(k, TemplateIdent) and v == 1
            for k, v in profile.template_invocations.items()
        )
        inner_ident = TemplateIdent("identity", inner.content_digest())
        assert profile.template_instructions[inner_ident] == 2
        assert profile.opcode_counts[Op.CALL] == 1
        ranked = profile.hot_templates()
        assert ranked[0][0] == "outer"   # display name stays readable
        json_form = profile.to_json()
        by_name = {
            entry["name"]: entry
            for entry in json_form["templates"].values()
        }
        assert by_name["identity"]["invocations"] == 1
        assert "hot templates" in profile.report()

    def test_same_named_templates_attributed_separately(self):
        # Regression: two distinct templates that share a name must not
        # have their counts merged — attribution is by content identity.
        def make(literal):
            return simple(instruction(Op.CONST, Lit(literal)), name="twin")

        first, second = make(1), make(2)
        machine = Machine()
        profile = VMProfile()
        assert call_profiled(machine, VmClosure(first, ()), [], profile) == 1
        assert call_profiled(machine, VmClosure(second, ()), [], profile) == 2
        assert call_profiled(machine, VmClosure(first, ()), [], profile) == 1
        invocations = {
            k: v for k, v in profile.template_invocations.items()
            if k.name == "twin"
        }
        assert sorted(invocations.values()) == [1, 2]
        # Human-readable output disambiguates colliding names with the
        # digest suffix instead of silently merging them.
        names = [name for name, _, _ in profile.hot_templates()]
        assert all(name.startswith("twin#") for name in names)
        assert len(set(names)) == 2
        report = profile.report()
        assert "twin#" in report

    def test_object_identity_does_not_split_counts(self):
        # The flip side: structurally identical copies are ONE template
        # as far as attribution goes, even as distinct Python objects.
        t = simple(instruction(Op.CONST, Lit(7)), name="same")
        copy = Template(
            code=t.code, literals=t.literals, arity=t.arity,
            nlocals=t.nlocals, name=t.name,
        )
        assert copy is not t
        machine = Machine()
        profile = VMProfile()
        call_profiled(machine, VmClosure(t, ()), [], profile)
        call_profiled(machine, VmClosure(copy, ()), [], profile)
        ident = TemplateIdent("same", t.content_digest())
        assert profile.template_invocations[ident] == 2

    def test_empty_profile_renders_consistently(self):
        # Regression: a never-run profile must produce the same "empty"
        # story in text and JSON — "(none)" sections and empty maps.
        profile = VMProfile()
        report = profile.report()
        assert report.count("(none)") == 3
        json_form = profile.to_json()
        assert json_form["calls"] == 0
        assert json_form["total_instructions"] == 0
        assert json_form["opcodes"] == {}
        assert json_form["pairs"] == {}
        assert json_form["templates"] == {}

    def test_results_identical_to_production_loop(self):
        # The same computation through both loops, same answer.
        n = 10
        t = simple(
            instruction(Op.LOCAL, 0),
            instruction(Op.PUSH),
            instruction(Op.LOCAL, 0),
            instruction(Op.PUSH),
            instruction(Op.PRIM, Lit(PRIMITIVES[sym("*")]), 2),
            arity=1,
        )
        machine = Machine()
        plain = machine.call(VmClosure(t, ()), [n])
        profile = VMProfile()
        counted = call_profiled(machine, VmClosure(t, ()), [n], profile)
        assert plain == counted == 100


class TestTemplateValidation:
    def test_template_rejects_nlocals_below_arity(self):
        with pytest.raises(ValueError, match="nlocals 1 < arity 2"):
            Template(
                code=((Op.RETURN,),),
                literals=(),
                arity=2,
                nlocals=1,
                name="bad",
            )

    def test_template_rejects_negative_arity(self):
        with pytest.raises(ValueError, match="negative arity"):
            Template(
                code=((Op.RETURN,),),
                literals=(),
                arity=-1,
                nlocals=0,
                name="bad",
            )

    def test_assembler_rejects_nlocals_below_arity(self):
        from repro.vm.assembler import AssemblyError

        with pytest.raises(AssemblyError, match="nlocals"):
            assemble(
                sequentially(instruction(Op.RETURN)), 2, 1, "short-frame"
            )
