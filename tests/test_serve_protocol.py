"""The service wire protocol: framing, validation, and round-trips.

The frame codec is the trust boundary of the specialization service —
every byte a tenant sends passes through :func:`decode_frame` before
anything else looks at it.  The hypothesis property pins the round-trip
identity over arbitrary JSON-object payloads; the rejection tests pin
that malformed input (bad magic, version skew, truncation, trailing
bytes, oversized frames) raises :class:`FrameError` instead of
reaching the dispatcher.
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    RequestValidationError,
    decode_frame,
    encode_frame,
    error_frame,
    specialize_request,
    validate_specialize,
)

# JSON-representable values: whatever ``json.dumps`` can produce and
# ``json.loads`` gives back unchanged (no NaN/Infinity — the codec uses
# strict JSON, and NaN != NaN would break the identity anyway).
json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**53), max_value=2**53),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=40),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)

json_objects = st.dictionaries(st.text(max_size=10), json_values, max_size=8)


class TestFrameCodec:
    @settings(max_examples=200, deadline=None)
    @given(json_objects)
    def test_round_trip_identity(self, payload):
        assert decode_frame(encode_frame(payload)) == payload

    def test_frame_layout_is_versioned_and_length_prefixed(self):
        data = encode_frame({"type": "ping"})
        magic, version, length = struct.unpack(">2sBxI", data[:8])
        assert magic == b"RP"
        assert version == PROTOCOL_VERSION
        assert length == len(data) - 8
        assert json.loads(data[8:]) == {"type": "ping"}

    def test_rejects_non_dict_payload(self):
        with pytest.raises(FrameError):
            encode_frame(["not", "an", "object"])

    def test_rejects_oversized_payload_on_encode(self):
        with pytest.raises(FrameError, match="over the"):
            encode_frame({"x": "a" * 64}, max_bytes=32)

    def test_rejects_short_header(self):
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(b"RP\x01\x00")

    def test_rejects_bad_magic(self):
        data = bytearray(encode_frame({"type": "ping"}))
        data[0:2] = b"XX"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(data))

    def test_rejects_version_skew(self):
        data = bytearray(encode_frame({"type": "ping"}))
        data[2] = PROTOCOL_VERSION + 1
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(data))

    def test_rejects_truncated_body(self):
        data = encode_frame({"type": "ping"})
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(data[:-1])

    def test_rejects_trailing_bytes(self):
        data = encode_frame({"type": "ping"})
        with pytest.raises(FrameError, match="trailing"):
            decode_frame(data + b"!")

    def test_rejects_oversized_frame_on_decode(self):
        data = encode_frame({"x": "a" * 64})
        with pytest.raises(FrameError, match="over the"):
            decode_frame(data, max_bytes=32)

    def test_rejects_non_object_json_body(self):
        body = json.dumps([1, 2, 3]).encode()
        header = struct.pack(">2sBxI", b"RP", PROTOCOL_VERSION, len(body))
        with pytest.raises(FrameError, match="object"):
            decode_frame(header + body)

    def test_rejects_garbage_body(self):
        body = b"\xff\xfe not json"
        header = struct.pack(">2sBxI", b"RP", PROTOCOL_VERSION, len(body))
        with pytest.raises(FrameError):
            decode_frame(header + body)

    def test_default_limit_is_4mib(self):
        assert MAX_FRAME_BYTES == 4 * 1024 * 1024


class TestRequestValidation:
    def test_specialize_request_round_trips_through_validation(self):
        frame = specialize_request(
            "(define (f s d) s)", "SD", ["1"], tenant="t",
            dynamics=["2"], dif_strategy="join", backend="source",
            max_unfold_depth=10, max_residual_size=100,
        )
        req = validate_specialize(decode_frame(encode_frame(frame)))
        assert req["program"] == "(define (f s d) s)"
        assert req["signature"] == "SD"
        assert req["statics"] == ["1"]
        assert req["dynamics"] == ["2"]
        assert req["tenant"] == "t"
        assert req["dif_strategy"] == "join"
        assert req["backend"] == "source"
        assert req["max_unfold_depth"] == 10
        assert req["max_residual_size"] == 100

    def test_defaults_are_filled_in(self):
        req = validate_specialize(specialize_request("(define (f d) d)", "D"))
        assert req["tenant"] == "public"
        assert req["dif_strategy"] == "duplicate"
        assert req["backend"] == "object"
        assert req["dynamics"] is None
        assert req["verify"] is True

    @pytest.mark.parametrize(
        "mutation",
        [
            {"program": 7},
            {"signature": None},
            {"statics": "not-a-list"},
            {"statics": [1]},
            {"dif_strategy": "clone"},
            {"backend": "llvm"},
            {"max_unfold_depth": 0},
            {"max_residual_size": -5},
            {"tenant": ""},
            {"tenant": 3},
        ],
    )
    def test_bad_fields_are_rejected(self, mutation):
        frame = specialize_request("(define (f d) d)", "D")
        frame.update(mutation)
        with pytest.raises(RequestValidationError):
            validate_specialize(frame)


class TestErrorFrames:
    def test_error_frame_shape(self):
        frame = error_frame("BUSY", "try later", retryable=True, queue=3)
        assert frame["type"] == "error"
        assert frame["code"] == "BUSY"
        assert frame["retryable"] is True
        assert frame["queue"] == 3
        assert frame["code"] in ERROR_CODES

    def test_unknown_code_is_a_bug(self):
        with pytest.raises(ValueError):
            error_frame("NO_SUCH_CODE", "nope")
