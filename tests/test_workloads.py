"""Tests for the MIXWELL and LAZY workloads: direct runs, Futamura
projections through both backends, and the interpreter-size claims."""

import pytest

from repro.compiler import compile_program
from repro.runtime.values import datum_to_value, scheme_equal, value_to_datum
from repro.rtcg import make_generating_extension
from repro.workloads import (
    LAZY_PRIMES_PROGRAM,
    LAZY_SIGNATURE,
    LAZY_SOURCE,
    MIXWELL_SIGNATURE,
    MIXWELL_SOURCE,
    MIXWELL_TM_PROGRAM,
    lazy_interpreter,
    lazy_primes_program,
    mixwell_interpreter,
    mixwell_tm_program,
    run_lazy,
    run_mixwell,
)


def increment_oracle(bits):
    n = int("".join(map(str, bits)), 2) + 1
    return [int(c) for c in bin(n)[2:]]


PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]


class TestMixwellDirect:
    @pytest.mark.parametrize(
        "bits", [[0], [1], [1, 0], [1, 1], [1, 0, 1], [1, 1, 1, 1], [1, 0, 0, 1, 0]]
    )
    def test_tm_increment(self, bits):
        out = run_mixwell(mixwell_tm_program(), datum_to_value(bits))
        assert value_to_datum(out) == increment_oracle(bits)

    def test_interpreter_size_matches_paper(self):
        # "The MIXWELL interpreter is 93 lines long and was run on a
        # 62-line input program."
        assert 80 <= len(MIXWELL_SOURCE.strip().splitlines()) <= 105
        assert 50 <= len(MIXWELL_TM_PROGRAM.strip().splitlines()) <= 75

    def test_unknown_primitive_errors(self):
        from repro.runtime.errors import SchemeError
        from repro.sexp import read

        bad = datum_to_value(read("((main (x) = (frobnicate x)))"))
        with pytest.raises(SchemeError):
            run_mixwell(bad, 1)

    def test_on_vm_via_stock_compiler(self):
        cp = compile_program(mixwell_interpreter(), compiler="stock")
        out = cp.run([mixwell_tm_program(), datum_to_value([1, 0, 1])])
        assert value_to_datum(out) == [1, 1, 0]

    def test_on_vm_via_anf_compiler(self):
        cp = compile_program(mixwell_interpreter(), compiler="auto")
        out = cp.run([mixwell_tm_program(), datum_to_value([1, 1])])
        assert value_to_datum(out) == [1, 0, 0]


class TestLazyDirect:
    @pytest.mark.parametrize("i", range(5))
    def test_primes(self, i):
        assert run_lazy(lazy_primes_program(), i) == PRIMES[i]

    def test_interpreter_size_matches_paper(self):
        # "the LAZY interpreter has 127 lines of code and was run on a
        # 26-line input program."
        assert 110 <= len(LAZY_SOURCE.strip().splitlines()) <= 140
        assert 15 <= len(LAZY_PRIMES_PROGRAM.strip().splitlines()) <= 35

    def test_laziness_is_essential(self):
        # `from` builds an infinite stream; a strict interpreter would
        # diverge immediately.  Taking element 0 must terminate.
        from repro.sexp import read

        prog = datum_to_value(
            read("((main (n) = (car (call from n))) (from (k) = (cons k (call from (+ k 1)))))")
        )
        assert run_lazy(prog, 5) == 5

    def test_on_vm(self):
        cp = compile_program(lazy_interpreter(), compiler="auto")
        assert cp.run([lazy_primes_program(), 3]) == 7


class TestMixwellFutamura:
    @pytest.fixture(scope="class")
    def gen(self):
        return make_generating_extension(
            mixwell_interpreter(), MIXWELL_SIGNATURE
        )

    @pytest.fixture(scope="class")
    def residual_source(self, gen):
        return gen.to_source([mixwell_tm_program()])

    @pytest.fixture(scope="class")
    def residual_object(self, gen):
        return gen.to_object_code([mixwell_tm_program()])

    @pytest.mark.parametrize("bits", [[1], [1, 0, 1], [1, 1, 1], [1, 0, 0, 1]])
    def test_residual_source_correct(self, residual_source, bits):
        out = residual_source.run([datum_to_value(bits)])
        assert value_to_datum(out) == increment_oracle(bits)

    @pytest.mark.parametrize("bits", [[1], [1, 0, 1], [1, 1, 1], [1, 0, 0, 1]])
    def test_residual_object_correct(self, residual_object, bits):
        out = residual_object.run([datum_to_value(bits)])
        assert value_to_datum(out) == increment_oracle(bits)

    def test_residual_is_anf(self, residual_source):
        from repro.anf import is_anf_program

        assert is_anf_program(residual_source.program)

    def test_interpretation_overhead_removed(self, residual_source):
        # The residual program must not mention the interpreter's
        # dispatch machinery: no eq?-on-quoted-operator tests survive.
        from repro.lang import Const, walk
        from repro.sexp import sym

        for d in residual_source.program.defs:
            for node in walk(d.body):
                if isinstance(node, Const):
                    assert node.value not in (
                        sym("quote"),
                        sym("call"),
                    ), "interpreter dispatch survived specialization"

    def test_residual_defs_track_tm_program_functions(self, residual_source):
        # One residual function per (reachable, looping) MIXWELL function
        # — the hallmark of compiling by specialization.  The TM program
        # has 12 definitions; the residual program must stay in that
        # region (not one def per expression!).
        assert 2 <= len(residual_source.program.defs) <= 16


class TestLazyFutamura:
    @pytest.fixture(scope="class")
    def gen(self):
        return make_generating_extension(lazy_interpreter(), LAZY_SIGNATURE)

    @pytest.fixture(scope="class")
    def residual_source(self, gen):
        return gen.to_source([lazy_primes_program()])

    @pytest.fixture(scope="class")
    def residual_object(self, gen):
        return gen.to_object_code([lazy_primes_program()])

    @pytest.mark.parametrize("i", range(4))
    def test_residual_source_correct(self, residual_source, i):
        assert residual_source.run([i]) == PRIMES[i]

    @pytest.mark.parametrize("i", range(5))
    def test_residual_object_correct(self, residual_object, i):
        assert residual_object.run([i]) == PRIMES[i]

    def test_residual_contains_closures(self, residual_source):
        # Laziness compiles into residual lambdas (thunks).
        from repro.lang import Lam, walk

        assert any(
            isinstance(n, Lam)
            for d in residual_source.program.defs
            for n in walk(d.body)
        )

    def test_residual_is_anf(self, residual_source):
        from repro.anf import is_anf_program

        assert is_anf_program(residual_source.program)

    def test_one_residual_def_per_lazy_function(self, residual_source):
        # The primes program has 5 definitions.
        assert 3 <= len(residual_source.program.defs) <= 8


class TestFutamuraEquation:
    """residual(interp, prog)(input) == interp(prog, input) — end to end."""

    def test_mixwell_equation(self):
        gen = make_generating_extension(
            mixwell_interpreter(), MIXWELL_SIGNATURE
        )
        rp = gen.to_object_code([mixwell_tm_program()])
        for bits in ([1, 1, 0], [1, 0, 1, 1, 1]):
            tape = datum_to_value(bits)
            direct = run_mixwell(mixwell_tm_program(), tape)
            assert scheme_equal(rp.run([tape]), direct)

    def test_lazy_equation(self):
        gen = make_generating_extension(lazy_interpreter(), LAZY_SIGNATURE)
        rp = gen.to_object_code([lazy_primes_program()])
        for i in (0, 2, 4):
            assert rp.run([i]) == run_lazy(lazy_primes_program(), i)
